#include "check/oracles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "alu/alu_factory.hpp"
#include "alu/cmos_core_alu.hpp"
#include "cell/processor_cell.hpp"
#include "coding/hamming.hpp"
#include "coding/hsiao.hpp"
#include "coding/majority.hpp"
#include "coding/reed_solomon.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/defect_map.hpp"
#include "fault/mask_generator.hpp"
#include "fault/remap.hpp"
#include "fault/scenario.hpp"
#include "lut/coded_lut.hpp"
#include "lut/truth_table.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "sim/trial_engine.hpp"
#include "simd/simd_dispatch.hpp"
#include "workload/instruction_stream.hpp"

namespace nbx::check {
namespace {

// ---------------------------------------------------------------- shared

/// Full-precision double rendering for failure messages (json_double is
/// used for the serialized case itself).
std::string show(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

const JsonValue* require(const JsonValue& doc, const char* key,
                         JsonValue::Kind kind) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || v->kind() != kind) {
    return nullptr;
  }
  return v;
}

/// All case documents carry a "family" tag so a repro file replayed
/// against the wrong property is rejected at load instead of producing a
/// confusing verdict.
bool family_matches(const JsonValue& doc, const char* name) {
  const JsonValue* fam = require(doc, "family", JsonValue::Kind::kString);
  return fam != nullptr && fam->as_string() == name;
}

std::optional<Opcode> opcode_by_name(const std::string& name) {
  for (Opcode op : kAllOpcodes) {
    if (opcode_name(op) == name) {
      return op;
    }
  }
  return std::nullopt;
}

// ------------------------------------------------- engine-differential

constexpr const char* kEngineName = "engine-differential";

/// Percent pool for generated sweeps: the low-rate half of the paper
/// sweep. High percentages add runtime without adding scheduling
/// diversity (the differential contract is about execution paths, not
/// fault physics).
const std::vector<double> kPercentPool = {0.0, 0.05, 0.1, 0.5, 1.0,
                                          2.0, 3.0,  5.0, 10.0};

struct EngineCase {
  std::string alu;
  std::vector<double> percents;
  int trials = 1;
  std::uint64_t seed = 0;
  std::string policy = "round";  // round | floor | bernoulli | burst
  std::size_t burst_length = 1;
  std::string scope = "all";  // all | datapath
  std::size_t datapath_sites = 0;
  unsigned lanes = 2;    // batched-engine lanes for the batched variants
  unsigned threads = 2;  // pool width for the threaded variants
};

std::optional<FaultCountPolicy> parse_policy(const std::string& s) {
  if (s == "round") return FaultCountPolicy::kRoundNearest;
  if (s == "floor") return FaultCountPolicy::kFloor;
  if (s == "bernoulli") return FaultCountPolicy::kBernoulli;
  if (s == "burst") return FaultCountPolicy::kBurst;
  return std::nullopt;
}

EngineCase generate_engine_case(Gen& g) {
  const std::vector<AluSpec>& specs = all_specs();
  const AluSpec& spec = specs[g.below(specs.size())];
  EngineCase c;
  c.alu = spec.name;
  const std::size_t n_percents = g.length(1, 3);
  for (std::uint64_t i :
       g.distinct_below(kPercentPool.size(), n_percents)) {
    c.percents.push_back(kPercentPool[i]);
  }
  c.trials = static_cast<int>(g.in_range(1, 2));
  c.seed = g.u64();
  c.policy = g.pick({std::string("round"), std::string("floor"),
                     std::string("bernoulli"), std::string("burst")});
  c.burst_length = c.policy == "burst" ? g.in_range(1, 4) : 1;
  if (g.boolean(0.3)) {
    c.scope = "datapath";
    c.datapath_sites = g.in_range(1, spec.expected_sites);
  }
  // Full wide-engine range: 1..64 exercises the single-word layout,
  // 65..512 the multi-word SIMD substrate (2/4/8 lane words).
  c.lanes = static_cast<unsigned>(g.in_range(1, 512));
  c.threads = static_cast<unsigned>(g.in_range(2, 4));
  return c;
}

std::string engine_case_json(const EngineCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kEngineName << "\", \"alu\": \""
     << json_escape(c.alu) << "\", \"percents\": [";
  for (std::size_t i = 0; i < c.percents.size(); ++i) {
    os << (i == 0 ? "" : ", ") << json_double(c.percents[i]);
  }
  os << "], \"trials\": " << c.trials << ", \"seed\": " << c.seed
     << ", \"policy\": \"" << c.policy
     << "\", \"burst_length\": " << c.burst_length << ", \"scope\": \""
     << c.scope << "\", \"datapath_sites\": " << c.datapath_sites
     << ", \"lanes\": " << c.lanes << ", \"threads\": " << c.threads
     << "}";
  return os.str();
}

std::optional<EngineCase> engine_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kEngineName)) {
    return std::nullopt;
  }
  const JsonValue* alu = require(doc, "alu", JsonValue::Kind::kString);
  const JsonValue* percents =
      require(doc, "percents", JsonValue::Kind::kArray);
  const JsonValue* trials = require(doc, "trials", JsonValue::Kind::kNumber);
  const JsonValue* seed = require(doc, "seed", JsonValue::Kind::kNumber);
  const JsonValue* policy = require(doc, "policy", JsonValue::Kind::kString);
  const JsonValue* burst =
      require(doc, "burst_length", JsonValue::Kind::kNumber);
  const JsonValue* scope = require(doc, "scope", JsonValue::Kind::kString);
  const JsonValue* dp =
      require(doc, "datapath_sites", JsonValue::Kind::kNumber);
  const JsonValue* lanes = require(doc, "lanes", JsonValue::Kind::kNumber);
  const JsonValue* threads =
      require(doc, "threads", JsonValue::Kind::kNumber);
  if (alu == nullptr || percents == nullptr || trials == nullptr ||
      seed == nullptr || policy == nullptr || burst == nullptr ||
      scope == nullptr || dp == nullptr || lanes == nullptr ||
      threads == nullptr) {
    return std::nullopt;
  }
  EngineCase c;
  c.alu = alu->as_string();
  for (const JsonValue& p : percents->items()) {
    if (!p.is_number()) {
      return std::nullopt;
    }
    c.percents.push_back(p.as_double().value_or(0.0));
  }
  c.trials = static_cast<int>(trials->as_i64().value_or(1));
  c.seed = seed->as_u64().value_or(0);
  c.policy = policy->as_string();
  c.burst_length =
      static_cast<std::size_t>(burst->as_u64().value_or(1));
  c.scope = scope->as_string();
  c.datapath_sites = static_cast<std::size_t>(dp->as_u64().value_or(0));
  c.lanes = static_cast<unsigned>(lanes->as_u64().value_or(1));
  c.threads = static_cast<unsigned>(threads->as_u64().value_or(2));
  return c;
}

std::optional<std::string> compare_points(
    const std::vector<DataPoint>& base, const std::vector<DataPoint>& got,
    const char* variant) {
  auto fail = [&](std::size_t i, const char* field, const std::string& b,
                  const std::string& g) {
    std::ostringstream os;
    os << variant << " diverges from scalar-serial baseline at point " << i
       << ": " << field << " " << g << " != " << b;
    return os.str();
  };
  if (got.size() != base.size()) {
    std::ostringstream os;
    os << variant << " returned " << got.size() << " points, baseline "
       << base.size();
    return os.str();
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    const DataPoint& b = base[i];
    const DataPoint& g = got[i];
    if (g.alu != b.alu) {
      return fail(i, "alu", b.alu, g.alu);
    }
    if (g.fault_percent != b.fault_percent) {
      return fail(i, "fault_percent", show(b.fault_percent),
                  show(g.fault_percent));
    }
    if (g.mean_percent_correct != b.mean_percent_correct) {
      return fail(i, "mean_percent_correct", show(b.mean_percent_correct),
                  show(g.mean_percent_correct));
    }
    if (g.stddev != b.stddev) {
      return fail(i, "stddev", show(b.stddev), show(g.stddev));
    }
    if (g.ci95 != b.ci95) {
      return fail(i, "ci95", show(b.ci95), show(g.ci95));
    }
    if (g.samples != b.samples) {
      return fail(i, "samples", std::to_string(b.samples),
                  std::to_string(g.samples));
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_engine_case(const EngineCase& c) {
  const std::unique_ptr<IAlu> alu = make_alu(c.alu);
  if (alu == nullptr) {
    return "invalid case: unknown alu '" + c.alu + "'";
  }
  const std::optional<FaultCountPolicy> policy = parse_policy(c.policy);
  if (!policy.has_value()) {
    return "invalid case: unknown policy '" + c.policy + "'";
  }
  if (c.scope != "all" && c.scope != "datapath") {
    return "invalid case: unknown scope '" + c.scope + "'";
  }
  if (c.percents.empty() || c.trials < 1 || c.lanes < 1 ||
      c.burst_length < 1) {
    return "invalid case: empty percents or non-positive knob";
  }
  if (c.scope == "datapath" &&
      (c.datapath_sites < 1 || c.datapath_sites > alu->fault_sites())) {
    return "invalid case: datapath_sites out of [1, fault_sites]";
  }

  SweepSpec spec;
  spec.percents = c.percents;
  spec.trials_per_workload = c.trials;
  spec.seed = c.seed;
  spec.policy = *policy;
  spec.burst_length = c.burst_length;
  spec.scope = c.scope == "datapath" ? InjectionScope::kDatapathOnly
                                     : InjectionScope::kAll;
  spec.datapath_sites = c.scope == "datapath" ? c.datapath_sites : 0;

  const std::vector<std::vector<Instruction>> streams =
      paper_streams(c.seed);

  const auto engine = [](unsigned threads, unsigned lanes) {
    ParallelConfig par;
    par.threads = threads;
    par.batch_lanes = lanes;
    return TrialEngine(par);
  };

  // Baseline: scalar trials, serial schedule.
  const std::vector<DataPoint> base =
      engine(1, 0).sweep(*alu, streams, spec);

  struct Variant {
    const char* name;
    unsigned threads;
    unsigned lanes;
  };
  const Variant variants[] = {
      {"scalar-threaded", c.threads, 0},
      {"batched-serial", 1, c.lanes},
      {"batched-threaded", c.threads, c.lanes},
  };
  for (const Variant& v : variants) {
    if (std::optional<std::string> msg = compare_points(
            base, engine(v.threads, v.lanes).sweep(*alu, streams, spec),
            v.name)) {
      return msg;
    }
  }

  // Anatomy variants: points must still match the plain baseline
  // (accounting is passive), and the counters themselves must be
  // bit-identical scalar-vs-batched under different schedules.
  const SweepAnatomy scalar_anatomy =
      engine(1, 0).sweep_anatomy(*alu, streams, spec);
  if (std::optional<std::string> msg = compare_points(
          base, scalar_anatomy.points, "anatomy-scalar-serial")) {
    return msg;
  }
  const SweepAnatomy batched_anatomy =
      engine(c.threads, c.lanes).sweep_anatomy(*alu, streams, spec);
  if (std::optional<std::string> msg = compare_points(
          base, batched_anatomy.points, "anatomy-batched-threaded")) {
    return msg;
  }
  if (scalar_anatomy.metrics.size() != batched_anatomy.metrics.size()) {
    return "anatomy metrics count differs scalar vs batched";
  }
  for (std::size_t i = 0; i < scalar_anatomy.metrics.size(); ++i) {
    if (!(scalar_anatomy.metrics[i] == batched_anatomy.metrics[i])) {
      std::ostringstream os;
      os << "anatomy counters diverge scalar vs batched at percent index "
         << i << " (" << show(spec.percents[i]) << "%)";
      return os.str();
    }
  }
  return std::nullopt;
}

std::vector<EngineCase> shrink_engine_case(const EngineCase& c) {
  std::vector<EngineCase> out;
  if (c.percents.size() > 1) {
    for (std::size_t i = 0; i < c.percents.size(); ++i) {
      EngineCase s = c;
      s.percents.erase(s.percents.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(s));
    }
  }
  if (c.trials > 1) {
    EngineCase s = c;
    s.trials = 1;
    out.push_back(std::move(s));
  }
  if (c.policy != "round") {
    EngineCase s = c;
    s.policy = "round";
    s.burst_length = 1;
    out.push_back(std::move(s));
  }
  if (c.scope != "all") {
    EngineCase s = c;
    s.scope = "all";
    s.datapath_sites = 0;
    out.push_back(std::move(s));
  }
  if (c.lanes > 64) {
    // First shrink multi-word layouts back to the single-word substrate;
    // only then all the way to one lane.
    EngineCase s = c;
    s.lanes = 64;
    out.push_back(std::move(s));
  }
  if (c.lanes > 1) {
    EngineCase s = c;
    s.lanes = 1;
    out.push_back(std::move(s));
  }
  if (c.threads > 2) {
    EngineCase s = c;
    s.threads = 2;
    out.push_back(std::move(s));
  }
  return out;
}

// ------------------------------------------------- simd-differential

constexpr const char* kSimdName = "simd-differential";

/// One generated SweepSpec run through the wide lane engine under EVERY
/// compiled-in + CPU-supported dispatch tier (forced via
/// ScopedTierOverride), each compared bit-for-bit — points AND anatomy
/// counters — against the scalar trial engine. Comparing every tier to
/// the same baseline implies the tiers are pairwise identical.
struct SimdCase {
  std::string alu;
  std::vector<double> percents;
  int trials = 1;
  std::uint64_t seed = 0;
  std::string policy = "round";  // round | floor | bernoulli | burst
  std::size_t burst_length = 1;
  std::string scope = "all";  // all | datapath
  std::size_t datapath_sites = 0;
  unsigned lanes = 2;  // 1..512 wide-engine lanes
};

SimdCase generate_simd_case(Gen& g) {
  const std::vector<AluSpec>& specs = all_specs();
  const AluSpec& spec = specs[g.below(specs.size())];
  SimdCase c;
  c.alu = spec.name;
  const std::size_t n_percents = g.length(1, 2);
  for (std::uint64_t i :
       g.distinct_below(kPercentPool.size(), n_percents)) {
    c.percents.push_back(kPercentPool[i]);
  }
  // Mostly cheap cases; occasionally enough trials to spill past the
  // first 64-lane word so the multi-word active masks and cross-word
  // scoring actually run with more than a partial group.
  c.trials = static_cast<int>(g.boolean(0.25) ? g.in_range(65, 140)
                                              : g.in_range(1, 4));
  c.seed = g.u64();
  c.policy = g.pick({std::string("round"), std::string("floor"),
                     std::string("bernoulli"), std::string("burst")});
  c.burst_length = c.policy == "burst" ? g.in_range(1, 4) : 1;
  if (g.boolean(0.3)) {
    c.scope = "datapath";
    c.datapath_sites = g.in_range(1, spec.expected_sites);
  }
  c.lanes = static_cast<unsigned>(g.in_range(1, 512));
  return c;
}

std::string simd_case_json(const SimdCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kSimdName << "\", \"alu\": \""
     << json_escape(c.alu) << "\", \"percents\": [";
  for (std::size_t i = 0; i < c.percents.size(); ++i) {
    os << (i == 0 ? "" : ", ") << json_double(c.percents[i]);
  }
  os << "], \"trials\": " << c.trials << ", \"seed\": " << c.seed
     << ", \"policy\": \"" << c.policy
     << "\", \"burst_length\": " << c.burst_length << ", \"scope\": \""
     << c.scope << "\", \"datapath_sites\": " << c.datapath_sites
     << ", \"lanes\": " << c.lanes << "}";
  return os.str();
}

std::optional<SimdCase> simd_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kSimdName)) {
    return std::nullopt;
  }
  const JsonValue* alu = require(doc, "alu", JsonValue::Kind::kString);
  const JsonValue* percents =
      require(doc, "percents", JsonValue::Kind::kArray);
  const JsonValue* trials = require(doc, "trials", JsonValue::Kind::kNumber);
  const JsonValue* seed = require(doc, "seed", JsonValue::Kind::kNumber);
  const JsonValue* policy = require(doc, "policy", JsonValue::Kind::kString);
  const JsonValue* burst =
      require(doc, "burst_length", JsonValue::Kind::kNumber);
  const JsonValue* scope = require(doc, "scope", JsonValue::Kind::kString);
  const JsonValue* dp =
      require(doc, "datapath_sites", JsonValue::Kind::kNumber);
  const JsonValue* lanes = require(doc, "lanes", JsonValue::Kind::kNumber);
  if (alu == nullptr || percents == nullptr || trials == nullptr ||
      seed == nullptr || policy == nullptr || burst == nullptr ||
      scope == nullptr || dp == nullptr || lanes == nullptr) {
    return std::nullopt;
  }
  SimdCase c;
  c.alu = alu->as_string();
  for (const JsonValue& p : percents->items()) {
    if (!p.is_number()) {
      return std::nullopt;
    }
    c.percents.push_back(p.as_double().value_or(0.0));
  }
  c.trials = static_cast<int>(trials->as_i64().value_or(1));
  c.seed = seed->as_u64().value_or(0);
  c.policy = policy->as_string();
  c.burst_length =
      static_cast<std::size_t>(burst->as_u64().value_or(1));
  c.scope = scope->as_string();
  c.datapath_sites = static_cast<std::size_t>(dp->as_u64().value_or(0));
  c.lanes = static_cast<unsigned>(lanes->as_u64().value_or(1));
  return c;
}

std::optional<std::string> run_simd_case(const SimdCase& c) {
  const std::unique_ptr<IAlu> alu = make_alu(c.alu);
  if (alu == nullptr) {
    return "invalid case: unknown alu '" + c.alu + "'";
  }
  const std::optional<FaultCountPolicy> policy = parse_policy(c.policy);
  if (!policy.has_value()) {
    return "invalid case: unknown policy '" + c.policy + "'";
  }
  if (c.scope != "all" && c.scope != "datapath") {
    return "invalid case: unknown scope '" + c.scope + "'";
  }
  if (c.percents.empty() || c.trials < 1 || c.lanes < 1 ||
      c.lanes > kMaxBatchLanes || c.burst_length < 1) {
    return "invalid case: empty percents or knob out of range";
  }
  if (c.scope == "datapath" &&
      (c.datapath_sites < 1 || c.datapath_sites > alu->fault_sites())) {
    return "invalid case: datapath_sites out of [1, fault_sites]";
  }

  SweepSpec spec;
  spec.percents = c.percents;
  spec.trials_per_workload = c.trials;
  spec.seed = c.seed;
  spec.policy = *policy;
  spec.burst_length = c.burst_length;
  spec.scope = c.scope == "datapath" ? InjectionScope::kDatapathOnly
                                     : InjectionScope::kAll;
  spec.datapath_sites = c.scope == "datapath" ? c.datapath_sites : 0;

  const std::vector<std::vector<Instruction>> streams =
      paper_streams(c.seed);

  const auto engine = [](unsigned lanes) {
    ParallelConfig par;
    par.threads = 1;
    par.batch_lanes = lanes;
    return TrialEngine(par);
  };

  // Baseline: the scalar trial engine (no lanes, no tiers involved).
  const SweepAnatomy base = engine(0).sweep_anatomy(*alu, streams, spec);

  const simd::SimdTier tiers[] = {simd::SimdTier::kScalar,
                                  simd::SimdTier::kAvx2,
                                  simd::SimdTier::kAvx512};
  for (const simd::SimdTier tier : tiers) {
    if (!simd::tier_supported(tier)) {
      continue;
    }
    const simd::ScopedTierOverride forced(tier);
    const SweepAnatomy got = engine(c.lanes).sweep_anatomy(*alu, streams,
                                                           spec);
    std::string variant = "wide-";
    variant += simd::tier_name(tier);
    variant += "@" + std::to_string(c.lanes) + "-lanes";
    if (std::optional<std::string> msg =
            compare_points(base.points, got.points, variant.c_str())) {
      return msg;
    }
    if (base.metrics.size() != got.metrics.size()) {
      return variant + ": anatomy metrics count differs from scalar";
    }
    for (std::size_t i = 0; i < base.metrics.size(); ++i) {
      if (!(base.metrics[i] == got.metrics[i])) {
        std::ostringstream os;
        os << variant
           << ": anatomy counters diverge from scalar at percent index "
           << i << " (" << show(spec.percents[i]) << "%)";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::vector<SimdCase> shrink_simd_case(const SimdCase& c) {
  std::vector<SimdCase> out;
  if (c.percents.size() > 1) {
    for (std::size_t i = 0; i < c.percents.size(); ++i) {
      SimdCase s = c;
      s.percents.erase(s.percents.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(s));
    }
  }
  if (c.trials > 1) {
    SimdCase s = c;
    s.trials = 1;
    out.push_back(std::move(s));
  }
  if (c.policy != "round") {
    SimdCase s = c;
    s.policy = "round";
    s.burst_length = 1;
    out.push_back(std::move(s));
  }
  if (c.scope != "all") {
    SimdCase s = c;
    s.scope = "all";
    s.datapath_sites = 0;
    out.push_back(std::move(s));
  }
  if (c.lanes > 64) {
    SimdCase s = c;
    s.lanes = 64;
    out.push_back(std::move(s));
  }
  if (c.lanes > 1) {
    SimdCase s = c;
    s.lanes = 1;
    out.push_back(std::move(s));
  }
  return out;
}

// --------------------------------------------- scenario-differential

constexpr const char* kScenarioName = "scenario-differential";

/// A generated FaultScenario — wear-out rate schedule plus 2-D burst
/// geometry — checked two ways in one case. First the generator laws
/// directly: the schedule anchors at the base rate, ramps monotonically
/// to clamp(base * end_factor), and stays in [0, 100]; every burst flip
/// lands inside a declared L×R strike neighbourhood (anchors replayed
/// from a twin Rng); a remap plan is injective and, when feasible,
/// never reads a known-defective site. Then the differential: the
/// scenario sweep must be bit-identical through scalar-serial,
/// scalar-threaded, every forced SIMD tier at the generated lane count,
/// and the threaded wide engine — and when the schedule degenerates to
/// i.i.d. (constant kind or end_factor == 1) with 1-D bursts, it must
/// reproduce the default-scenario sweep bitwise, seeds and all.
struct ScenarioCase {
  std::string alu;
  std::vector<double> percents;
  int trials = 1;
  std::uint64_t seed = 0;
  std::string policy = "round";  // round | floor | bernoulli | burst
  std::size_t burst_length = 1;
  std::size_t burst_rows = 1;
  std::size_t burst_row_stride = 0;  // 0 = historical 1-D runs
  std::string schedule = "constant";  // constant | linear | weibull
  double end_factor = 1.0;
  double shape = 1.0;
  unsigned lanes = 2;    // 1..512 wide-engine lanes
  unsigned threads = 2;  // pool width for the threaded variants
};

std::optional<RateScheduleKind> parse_schedule(const std::string& s) {
  if (s == "constant") return RateScheduleKind::kConstant;
  if (s == "linear") return RateScheduleKind::kLinear;
  if (s == "weibull") return RateScheduleKind::kWeibull;
  return std::nullopt;
}

ScenarioCase generate_scenario_case(Gen& g) {
  const std::vector<AluSpec>& specs = all_specs();
  ScenarioCase c;
  c.alu = specs[g.below(specs.size())].name;
  const std::size_t n_percents = g.length(1, 2);
  for (std::uint64_t i :
       g.distinct_below(kPercentPool.size(), n_percents)) {
    c.percents.push_back(kPercentPool[i]);
  }
  // Schedules only vary with the trial index, so most cases carry enough
  // trials for the ramp to actually move; a few spill past the first
  // 64-lane word so per-lane generators cross word boundaries.
  c.trials = static_cast<int>(g.boolean(0.2) ? g.in_range(65, 110)
                                             : g.in_range(2, 8));
  c.seed = g.u64();
  c.policy = g.pick({std::string("round"), std::string("floor"),
                     std::string("bernoulli"), std::string("burst")});
  if (c.policy == "burst") {
    c.burst_length = g.in_range(1, 4);
    if (g.boolean(0.6)) {
      c.burst_rows = g.in_range(1, 3);
      c.burst_row_stride = g.pick({std::size_t{4}, std::size_t{8},
                                   std::size_t{16}, std::size_t{24}});
    }
  }
  c.schedule = g.pick({std::string("constant"), std::string("linear"),
                       std::string("weibull")});
  // end_factor 1.0 on a non-constant kind is the deliberate edge case:
  // the scheduled path must still reproduce the i.i.d. sweep bitwise.
  c.end_factor = g.pick({0.0, 0.5, 1.0, 2.0, 6.0});
  c.shape = c.schedule == "weibull" ? g.pick({0.5, 2.0, 3.0}) : 1.0;
  c.lanes = static_cast<unsigned>(g.in_range(1, 512));
  c.threads = static_cast<unsigned>(g.pick({2u, 4u, 8u}));
  return c;
}

std::string scenario_case_json(const ScenarioCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kScenarioName << "\", \"alu\": \""
     << json_escape(c.alu) << "\", \"percents\": [";
  for (std::size_t i = 0; i < c.percents.size(); ++i) {
    os << (i == 0 ? "" : ", ") << json_double(c.percents[i]);
  }
  os << "], \"trials\": " << c.trials << ", \"seed\": " << c.seed
     << ", \"policy\": \"" << c.policy
     << "\", \"burst_length\": " << c.burst_length
     << ", \"burst_rows\": " << c.burst_rows
     << ", \"burst_row_stride\": " << c.burst_row_stride
     << ", \"schedule\": \"" << c.schedule
     << "\", \"end_factor\": " << json_double(c.end_factor)
     << ", \"shape\": " << json_double(c.shape)
     << ", \"lanes\": " << c.lanes << ", \"threads\": " << c.threads
     << "}";
  return os.str();
}

std::optional<ScenarioCase> scenario_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kScenarioName)) {
    return std::nullopt;
  }
  const JsonValue* alu = require(doc, "alu", JsonValue::Kind::kString);
  const JsonValue* percents =
      require(doc, "percents", JsonValue::Kind::kArray);
  const JsonValue* trials = require(doc, "trials", JsonValue::Kind::kNumber);
  const JsonValue* seed = require(doc, "seed", JsonValue::Kind::kNumber);
  const JsonValue* policy = require(doc, "policy", JsonValue::Kind::kString);
  const JsonValue* burst =
      require(doc, "burst_length", JsonValue::Kind::kNumber);
  const JsonValue* rows =
      require(doc, "burst_rows", JsonValue::Kind::kNumber);
  const JsonValue* stride =
      require(doc, "burst_row_stride", JsonValue::Kind::kNumber);
  const JsonValue* schedule =
      require(doc, "schedule", JsonValue::Kind::kString);
  const JsonValue* ef =
      require(doc, "end_factor", JsonValue::Kind::kNumber);
  const JsonValue* shape = require(doc, "shape", JsonValue::Kind::kNumber);
  const JsonValue* lanes = require(doc, "lanes", JsonValue::Kind::kNumber);
  const JsonValue* threads =
      require(doc, "threads", JsonValue::Kind::kNumber);
  if (alu == nullptr || percents == nullptr || trials == nullptr ||
      seed == nullptr || policy == nullptr || burst == nullptr ||
      rows == nullptr || stride == nullptr || schedule == nullptr ||
      ef == nullptr || shape == nullptr || lanes == nullptr ||
      threads == nullptr) {
    return std::nullopt;
  }
  ScenarioCase c;
  c.alu = alu->as_string();
  for (const JsonValue& p : percents->items()) {
    if (!p.is_number()) {
      return std::nullopt;
    }
    c.percents.push_back(p.as_double().value_or(0.0));
  }
  c.trials = static_cast<int>(trials->as_i64().value_or(1));
  c.seed = seed->as_u64().value_or(0);
  c.policy = policy->as_string();
  c.burst_length =
      static_cast<std::size_t>(burst->as_u64().value_or(1));
  c.burst_rows = static_cast<std::size_t>(rows->as_u64().value_or(1));
  c.burst_row_stride =
      static_cast<std::size_t>(stride->as_u64().value_or(0));
  c.schedule = schedule->as_string();
  c.end_factor = ef->as_double().value_or(1.0);
  c.shape = shape->as_double().value_or(1.0);
  c.lanes = static_cast<unsigned>(lanes->as_u64().value_or(1));
  c.threads = static_cast<unsigned>(threads->as_u64().value_or(2));
  return c;
}

/// The generator-law half of a scenario case: pure checks on the
/// schedule curve, the burst neighbourhood, and the remap plan, no
/// engine involved. Counterexamples here shrink exactly like
/// differential ones.
std::optional<std::string> scenario_laws(const ScenarioCase& c,
                                         const IAlu& alu,
                                         const RateSchedule& sched) {
  const auto trials = static_cast<std::size_t>(c.trials);
  for (const double base : c.percents) {
    // Trial 0 is the base rate, bit-for-bit: this is what keeps trial
    // seeds (and therefore every pinned golden) unmoved at the start of
    // a wear-out ramp.
    if (std::bit_cast<std::uint64_t>(sched.at(base, 0, trials)) !=
        std::bit_cast<std::uint64_t>(base)) {
      return "schedule law: at(" + show(base) + ", 0, n) != base bitwise";
    }
    const bool constant = sched.kind == RateScheduleKind::kConstant ||
                          sched.end_factor == 1.0;
    const bool up = constant || sched.end_factor >= 1.0;
    double prev = base;
    for (std::size_t t = 1; t < trials; ++t) {
      const double r = sched.at(base, t, trials);
      if (r < 0.0 || r > 100.0) {
        return "schedule law: rate " + show(r) + " escapes [0, 100] at trial " +
               std::to_string(t);
      }
      if (up ? r < prev : r > prev) {
        std::ostringstream os;
        os << "schedule law: not monotone at trial " << t << " (base "
           << show(base) << "): " << show(r) << (up ? " < " : " > ")
           << show(prev);
        return os.str();
      }
      prev = r;
    }
    if (trials > 1) {
      const double want =
          constant ? base : std::clamp(base * sched.end_factor, 0.0, 100.0);
      const double got = sched.at(base, trials - 1, trials);
      if (std::fabs(got - want) > 1e-9 * (1.0 + std::fabs(want))) {
        return "schedule law: endpoint " + show(got) +
               " misses clamp(base*end_factor) = " + show(want);
      }
    }
  }

  const std::size_t sites = alu.fault_sites();
  if (c.policy == "burst" && !c.percents.empty()) {
    const MaskGenerator gen(sites, c.percents.back(),
                            FaultCountPolicy::kBurst, c.burst_length,
                            c.burst_rows, c.burst_row_stride);
    if (const std::size_t strikes = gen.strikes_per_computation();
        strikes > 0) {
      // Replay the strike anchors from a twin Rng: every flipped site
      // must sit inside some declared L-columns-by-R-rows neighbourhood
      // (clipped at the row edge and the end of the site space).
      Rng draw(derive_seed({c.seed, 0xb1}));
      Rng replay(derive_seed({c.seed, 0xb1}));
      const BitVec mask = gen.generate(draw);
      BitVec allowed(sites);
      const std::size_t stride = c.burst_row_stride;
      for (std::size_t s = 0; s < strikes; ++s) {
        const auto anchor = static_cast<std::size_t>(replay.below(sites));
        if (stride == 0) {
          for (std::size_t i = 0;
               i < c.burst_length && anchor + i < sites; ++i) {
            allowed.set(anchor + i, true);
          }
          continue;
        }
        const std::size_t row = anchor / stride;
        const std::size_t col = anchor % stride;
        for (std::size_t r = 0; r < c.burst_rows; ++r) {
          for (std::size_t k = 0;
               k < c.burst_length && col + k < stride; ++k) {
            const std::size_t site = (row + r) * stride + col + k;
            if (site < sites) {
              allowed.set(site, true);
            }
          }
        }
      }
      for (std::size_t i = 0; i < sites; ++i) {
        if (mask.get(i) && !allowed.get(i)) {
          return "burst law: flipped site " + std::to_string(i) +
                 " lies outside every declared strike neighbourhood";
        }
      }
    }
  }

  // Remap law on a part manufactured from the case seed: the plan is
  // injective, and a feasible plan leaves zero logical defects — a
  // remapped placement never reads a known-defective site.
  {
    Rng rng(derive_seed({c.seed, 0x5e}));
    const DefectMap physical =
        DefectMap::manufacture(sites + sites / 8 + 1, 0.03, rng);
    const RemapPlan plan = remap_around_defects(physical, sites);
    if (plan.logical_to_physical.size() != sites) {
      return "remap law: plan covers " +
             std::to_string(plan.logical_to_physical.size()) +
             " logical sites, expected " + std::to_string(sites);
    }
    std::vector<char> seen(physical.sites(), 0);
    for (std::size_t i = 0; i < sites; ++i) {
      const std::uint32_t p = plan.logical_to_physical[i];
      if (p >= physical.sites()) {
        return "remap law: logical " + std::to_string(i) +
               " maps outside the physical site space";
      }
      if (seen[p] != 0) {
        return "remap law: physical site " + std::to_string(p) +
               " backs two logical sites (plan not injective)";
      }
      seen[p] = 1;
      if (plan.feasible && physical.is_defective(p)) {
        return "remap law: feasible plan reads known-defective physical "
               "site " + std::to_string(p);
      }
    }
    const DefectMap residual = remap_logical_defects(physical, plan);
    if (plan.feasible && residual.defect_count() != 0) {
      return "remap law: feasible plan left " +
             std::to_string(residual.defect_count()) + " logical defects";
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_scenario_case(const ScenarioCase& c) {
  const std::unique_ptr<IAlu> alu = make_alu(c.alu);
  if (alu == nullptr) {
    return "invalid case: unknown alu '" + c.alu + "'";
  }
  const std::optional<FaultCountPolicy> policy = parse_policy(c.policy);
  if (!policy.has_value()) {
    return "invalid case: unknown policy '" + c.policy + "'";
  }
  const std::optional<RateScheduleKind> kind = parse_schedule(c.schedule);
  if (!kind.has_value()) {
    return "invalid case: unknown schedule '" + c.schedule + "'";
  }
  if (c.percents.empty() || c.trials < 1 || c.lanes < 1 ||
      c.lanes > kMaxBatchLanes || c.burst_length < 1 || c.burst_rows < 1) {
    return "invalid case: empty percents or knob out of range";
  }
  if (c.burst_rows > 1 && c.burst_row_stride == 0) {
    return "invalid case: burst_rows > 1 requires a row stride";
  }
  if (!(c.end_factor >= 0.0) || !(c.shape > 0.0)) {
    return "invalid case: end_factor must be >= 0 and shape > 0";
  }

  SweepSpec spec;
  spec.percents = c.percents;
  spec.trials_per_workload = c.trials;
  spec.seed = c.seed;
  spec.policy = *policy;
  spec.burst_length = c.burst_length;
  spec.scenario.schedule.kind = *kind;
  spec.scenario.schedule.end_factor = c.end_factor;
  spec.scenario.schedule.shape = c.shape;
  spec.scenario.burst_rows = c.burst_rows;
  spec.scenario.burst_row_stride = c.burst_row_stride;

  if (std::optional<std::string> msg =
          scenario_laws(c, *alu, spec.scenario.schedule)) {
    return msg;
  }

  const std::vector<std::vector<Instruction>> streams =
      paper_streams(c.seed);

  const auto engine = [](unsigned threads, unsigned lanes) {
    ParallelConfig par;
    par.threads = threads;
    par.batch_lanes = lanes;
    return TrialEngine(par);
  };
  const auto compare_anatomy = [&](const SweepAnatomy& base,
                                   const SweepAnatomy& got,
                                   const std::string& variant)
      -> std::optional<std::string> {
    if (std::optional<std::string> msg =
            compare_points(base.points, got.points, variant.c_str())) {
      return msg;
    }
    if (base.metrics.size() != got.metrics.size()) {
      return variant + ": anatomy metrics count differs from baseline";
    }
    for (std::size_t i = 0; i < base.metrics.size(); ++i) {
      if (!(base.metrics[i] == got.metrics[i])) {
        std::ostringstream os;
        os << variant
           << ": anatomy counters (incl. scenario) diverge at percent "
              "index "
           << i << " (" << show(spec.percents[i]) << "%)";
        return os.str();
      }
    }
    return std::nullopt;
  };

  // Baseline: scalar trials, serial schedule, anatomy on (the scenario
  // counters ride the comparison).
  const SweepAnatomy base = engine(1, 0).sweep_anatomy(*alu, streams, spec);

  // An i.i.d.-degenerate schedule with 1-D bursts IS today's fault
  // model: it must reproduce the default-scenario sweep bit-for-bit —
  // same trial seeds, same points, same non-scenario counters.
  if (spec.scenario.is_iid() && c.burst_row_stride == 0) {
    SweepSpec plain = spec;
    plain.scenario = FaultScenario{};
    const SweepAnatomy iid =
        engine(1, 0).sweep_anatomy(*alu, streams, plain);
    if (std::optional<std::string> msg = compare_points(
            iid.points, base.points, "iid-degenerate-schedule")) {
      return msg;
    }
  }

  if (std::optional<std::string> msg = compare_anatomy(
          base, engine(c.threads, 0).sweep_anatomy(*alu, streams, spec),
          "scalar-" + std::to_string(c.threads) + "-threads")) {
    return msg;
  }

  const simd::SimdTier tiers[] = {simd::SimdTier::kScalar,
                                  simd::SimdTier::kAvx2,
                                  simd::SimdTier::kAvx512};
  for (const simd::SimdTier tier : tiers) {
    if (!simd::tier_supported(tier)) {
      continue;
    }
    const simd::ScopedTierOverride forced(tier);
    std::string variant = "wide-";
    variant += simd::tier_name(tier);
    variant += "@" + std::to_string(c.lanes) + "-lanes";
    if (std::optional<std::string> msg = compare_anatomy(
            base, engine(1, c.lanes).sweep_anatomy(*alu, streams, spec),
            variant)) {
      return msg;
    }
  }

  return compare_anatomy(
      base, engine(c.threads, c.lanes).sweep_anatomy(*alu, streams, spec),
      "wide-threaded@" + std::to_string(c.lanes) + "-lanes");
}

std::vector<ScenarioCase> shrink_scenario_case(const ScenarioCase& c) {
  std::vector<ScenarioCase> out;
  if (c.percents.size() > 1) {
    for (std::size_t i = 0; i < c.percents.size(); ++i) {
      ScenarioCase s = c;
      s.percents.erase(s.percents.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(s));
    }
  }
  if (c.trials > 2) {
    ScenarioCase s = c;
    s.trials = 2;
    out.push_back(std::move(s));
  }
  if (c.policy != "round") {
    ScenarioCase s = c;
    s.policy = "round";
    s.burst_length = 1;
    s.burst_rows = 1;
    s.burst_row_stride = 0;
    out.push_back(std::move(s));
  }
  if (c.burst_row_stride > 0) {
    ScenarioCase s = c;
    s.burst_rows = 1;
    s.burst_row_stride = 0;
    out.push_back(std::move(s));
  }
  if (c.schedule != "constant") {
    ScenarioCase s = c;
    s.schedule = "constant";
    s.end_factor = 1.0;
    s.shape = 1.0;
    out.push_back(std::move(s));
  }
  if (c.end_factor != 1.0) {
    ScenarioCase s = c;
    s.end_factor = 1.0;
    out.push_back(std::move(s));
  }
  if (c.lanes > 64) {
    ScenarioCase s = c;
    s.lanes = 64;
    out.push_back(std::move(s));
  }
  if (c.lanes > 1) {
    ScenarioCase s = c;
    s.lanes = 1;
    out.push_back(std::move(s));
  }
  if (c.threads > 2) {
    ScenarioCase s = c;
    s.threads = 2;
    out.push_back(std::move(s));
  }
  return out;
}

// ------------------------------------------------------- alu-vs-cmos

constexpr const char* kAluName = "alu-vs-cmos";

struct AluInstr {
  Opcode op = Opcode::kAnd;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};

struct AluCase {
  std::string alu;
  std::vector<AluInstr> instrs;
};

/// ALU construction (especially the space-redundant variants) is the
/// expensive part of an alu-vs-cmos case, and the shrinker re-runs the
/// same ALU dozens of times — so instances are cached per name.
const IAlu* cached_alu(const std::string& name) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<IAlu>> cache;
  const std::scoped_lock lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, make_alu(name)).first;
  }
  return it->second.get();
}

AluCase generate_alu_case(Gen& g) {
  const std::vector<AluSpec>& specs = all_specs();
  AluCase c;
  c.alu = specs[g.below(specs.size())].name;
  const std::size_t n = g.length(1, 32);
  c.instrs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AluInstr instr;
    instr.op = kAllOpcodes[g.below(4)];
    instr.a = g.byte();
    instr.b = g.byte();
    c.instrs.push_back(instr);
  }
  return c;
}

std::optional<std::string> run_alu_case(const AluCase& c) {
  const IAlu* alu = cached_alu(c.alu);
  if (alu == nullptr) {
    return "invalid case: unknown alu '" + c.alu + "'";
  }
  static const CmosCoreAlu cmos;
  for (std::size_t i = 0; i < c.instrs.size(); ++i) {
    const AluInstr& in = c.instrs[i];
    const std::uint8_t golden = golden_alu(in.op, in.a, in.b);
    const std::uint8_t gate = cmos.eval(in.op, in.a, in.b, {}, nullptr);
    const AluOutput out = alu->compute(in.op, in.a, in.b, {}, nullptr);
    std::ostringstream os;
    os << "instr " << i << " (" << opcode_name(in.op) << " "
       << int{in.a} << ", " << int{in.b} << "): ";
    if (gate != golden) {
      os << "cmos netlist " << int{gate} << " != golden_alu "
         << int{golden};
      return os.str();
    }
    if (out.value != golden) {
      os << c.alu << " value " << int{out.value} << " != golden_alu "
         << int{golden} << " under zero faults";
      return os.str();
    }
    if (!out.valid) {
      os << c.alu << " reported invalid result under zero faults";
      return os.str();
    }
    if (out.disagreement) {
      os << c.alu << " reported replica disagreement under zero faults";
      return os.str();
    }
  }
  return std::nullopt;
}

std::string alu_case_json(const AluCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kAluName << "\", \"alu\": \""
     << json_escape(c.alu) << "\", \"instrs\": [";
  for (std::size_t i = 0; i < c.instrs.size(); ++i) {
    const AluInstr& in = c.instrs[i];
    os << (i == 0 ? "" : ", ") << "[\"" << opcode_name(in.op) << "\", "
       << int{in.a} << ", " << int{in.b} << "]";
  }
  os << "]}";
  return os.str();
}

std::optional<AluCase> alu_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kAluName)) {
    return std::nullopt;
  }
  const JsonValue* alu = require(doc, "alu", JsonValue::Kind::kString);
  const JsonValue* instrs = require(doc, "instrs", JsonValue::Kind::kArray);
  if (alu == nullptr || instrs == nullptr) {
    return std::nullopt;
  }
  AluCase c;
  c.alu = alu->as_string();
  for (const JsonValue& triple : instrs->items()) {
    if (triple.kind() != JsonValue::Kind::kArray ||
        triple.items().size() != 3) {
      return std::nullopt;
    }
    const std::vector<JsonValue>& t = triple.items();
    if (!t[0].is_string() || !t[1].is_number() || !t[2].is_number()) {
      return std::nullopt;
    }
    const std::optional<Opcode> op = opcode_by_name(t[0].as_string());
    const std::optional<std::uint64_t> a = t[1].as_u64();
    const std::optional<std::uint64_t> b = t[2].as_u64();
    if (!op.has_value() || !a.has_value() || *a > 255 || !b.has_value() ||
        *b > 255) {
      return std::nullopt;
    }
    c.instrs.push_back({*op, static_cast<std::uint8_t>(*a),
                        static_cast<std::uint8_t>(*b)});
  }
  return c;
}

std::vector<AluCase> shrink_alu_case(const AluCase& c) {
  std::vector<AluCase> out;
  const std::size_t n = c.instrs.size();
  // Most aggressive first: halves, then single drops, then operand zeroing.
  if (n > 1) {
    AluCase first = c;
    first.instrs.resize(n / 2);
    out.push_back(std::move(first));
    AluCase second = c;
    second.instrs.erase(second.instrs.begin(),
                        second.instrs.begin() +
                            static_cast<std::ptrdiff_t>(n / 2));
    out.push_back(std::move(second));
    for (std::size_t i = 0; i < n; ++i) {
      AluCase s = c;
      s.instrs.erase(s.instrs.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(s));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (c.instrs[i].a != 0) {
      AluCase s = c;
      s.instrs[i].a = 0;
      out.push_back(std::move(s));
    }
    if (c.instrs[i].b != 0) {
      AluCase s = c;
      s.instrs[i].b = 0;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// ----------------------------------------------------- decode-t-error

constexpr const char* kDecodeName = "decode-t-error";

/// For the three information codes, `data_bits` is the word width and
/// `flips` are stored-bit positions in [data | checks] order. For the
/// TMR layouts, `data_bits` is the (power-of-two) table size and `flips`
/// index the triplicated store: kTmr keeps the copies as three blocks
/// (entry = pos % n), kTmrInterleaved keeps the three copies of each
/// entry adjacent (entry = pos / 3).
struct DecodeCase {
  std::string code;  // hamming | hsiao | rs | tmr | tmr-interleaved
  std::size_t data_bits = 1;
  std::string data;  // MSB-first bit string, length data_bits
  std::vector<std::size_t> flips;
};

const char* hamming_status_name(HammingStatus s) {
  switch (s) {
    case HammingStatus::kNoError:
      return "kNoError";
    case HammingStatus::kCorrected:
      return "kCorrected";
    case HammingStatus::kUncorrectable:
      return "kUncorrectable";
  }
  return "?";
}

const char* hsiao_status_name(HsiaoStatus s) {
  switch (s) {
    case HsiaoStatus::kNoError:
      return "kNoError";
    case HsiaoStatus::kCorrected:
      return "kCorrected";
    case HsiaoStatus::kDoubleDetected:
      return "kDoubleDetected";
    case HsiaoStatus::kUncorrectable:
      return "kUncorrectable";
  }
  return "?";
}

const char* rs_status_name(RsStatus s) {
  switch (s) {
    case RsStatus::kNoError:
      return "kNoError";
    case RsStatus::kCorrected:
      return "kCorrected";
    case RsStatus::kUncorrectable:
      return "kUncorrectable";
  }
  return "?";
}

std::string flips_string(const std::vector<std::size_t>& flips) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < flips.size(); ++i) {
    os << (i == 0 ? "" : ", ") << flips[i];
  }
  os << "]";
  return os.str();
}

/// Fills `data` with `bits` random bits (bits <= 64 by construction).
std::string random_word(Gen& g, std::size_t bits) {
  BitVec v(bits);
  v.deposit(0, bits, g.u64());
  return v.to_string();
}

DecodeCase generate_decode_case(Gen& g) {
  DecodeCase c;
  c.code = g.pick({std::string("hamming"), std::string("hsiao"),
                   std::string("rs"), std::string("tmr"),
                   std::string("tmr-interleaved")});
  if (c.code == "hamming") {
    c.data_bits = g.length(1, 57);
    const HammingCode code(c.data_bits);
    if (g.in_range(0, 1) == 1) {
      c.flips.push_back(g.below(code.codeword_bits()));
    }
  } else if (c.code == "hsiao") {
    c.data_bits = g.length(1, 57);
    const HsiaoCode code(c.data_bits);
    const std::size_t n_flips = g.in_range(0, 2);
    for (std::uint64_t p : g.distinct_below(code.codeword_bits(), n_flips)) {
      c.flips.push_back(static_cast<std::size_t>(p));
    }
  } else if (c.code == "rs") {
    c.data_bits = 4 * g.length(1, 13);
    const std::size_t symbols = c.data_bits / 4 + 2;
    const std::size_t n_flips = g.in_range(0, 4);
    if (n_flips > 0) {
      // All flips inside ONE codeword symbol: parity symbols s in {0, 1}
      // live at check bits [4s, 4s+4) (stored positions data_bits + ...),
      // data symbol i at data bits [4i, 4i+4).
      const std::size_t s = g.below(symbols);
      for (std::uint64_t off : g.distinct_below(4, n_flips)) {
        const std::size_t bit = static_cast<std::size_t>(off);
        c.flips.push_back(s < 2 ? c.data_bits + 4 * s + bit
                                : 4 * (s - 2) + bit);
      }
    }
  } else {
    const int k = static_cast<int>(g.length(1, kMaxLutInputs));
    c.data_bits = std::size_t{1} << k;
    const std::size_t n = c.data_bits;
    const std::size_t n_flips = g.length(0, std::min<std::size_t>(n, 6));
    const bool interleaved = c.code == "tmr-interleaved";
    for (std::uint64_t entry : g.distinct_below(n, n_flips)) {
      const std::size_t copy = g.below(3);
      c.flips.push_back(interleaved
                            ? static_cast<std::size_t>(entry) * 3 + copy
                            : copy * n + static_cast<std::size_t>(entry));
    }
  }
  c.data = random_word(g, c.data_bits);
  return c;
}

std::optional<std::string> run_info_code_case(const DecodeCase& c) {
  std::unique_ptr<HammingCode> hamming;
  std::unique_ptr<HsiaoCode> hsiao;
  std::unique_ptr<Rs16Code> rs;
  std::size_t check_bits = 0;
  std::size_t max_flips = 0;
  if (c.code == "hamming") {
    hamming = std::make_unique<HammingCode>(c.data_bits);
    check_bits = hamming->check_bits();
    max_flips = 1;
  } else if (c.code == "hsiao") {
    hsiao = std::make_unique<HsiaoCode>(c.data_bits);
    check_bits = hsiao->check_bits();
    max_flips = 2;
  } else {
    if (c.data_bits % 4 != 0 || c.data_bits < 4 || c.data_bits > 52) {
      return "invalid case: rs data_bits must be a multiple of 4 in [4,52]";
    }
    rs = std::make_unique<Rs16Code>(c.data_bits);
    check_bits = rs->check_bits();
    max_flips = 4;
  }
  if (c.flips.size() > max_flips) {
    return "invalid case: too many flips for " + c.code;
  }
  const std::size_t codeword_bits = c.data_bits + check_bits;
  for (std::size_t p : c.flips) {
    if (p >= codeword_bits) {
      return "invalid case: flip position out of codeword";
    }
  }
  if (rs != nullptr && !c.flips.empty()) {
    // All flips must hit one codeword symbol.
    auto symbol_of = [&](std::size_t p) {
      return p < c.data_bits ? 2 + p / 4 : (p - c.data_bits) / 4;
    };
    const std::size_t s0 = symbol_of(c.flips[0]);
    for (std::size_t p : c.flips) {
      if (symbol_of(p) != s0) {
        return "invalid case: rs flips span multiple symbols";
      }
    }
  }

  const BitVec data = BitVec::from_string(c.data);
  if (data.size() != c.data_bits) {
    return "invalid case: data string length != data_bits";
  }
  const BitVec checks = hamming != nullptr
                            ? hamming->generate_check_bits(data)
                        : hsiao != nullptr
                            ? hsiao->generate_check_bits(data)
                            : rs->generate_check_bits(data);

  BitVec faulted_data = data;
  BitVec faulted_checks = checks;
  for (std::size_t p : c.flips) {
    if (p < c.data_bits) {
      faulted_data.flip(p);
    } else {
      faulted_checks.flip(p - c.data_bits);
    }
  }
  const BitVec pre_decode_data = faulted_data;

  std::ostringstream os;
  os << c.code << "(" << c.data_bits << ") data=" << c.data
     << " flips=" << flips_string(c.flips) << ": ";
  if (hamming != nullptr) {
    const HammingStatus st =
        hamming->detect_and_correct(faulted_data, faulted_checks);
    const HammingStatus want = c.flips.empty() ? HammingStatus::kNoError
                                               : HammingStatus::kCorrected;
    if (st != want) {
      os << "status " << hamming_status_name(st) << ", expected "
         << hamming_status_name(want);
      return os.str();
    }
    if (!(faulted_data == data)) {
      os << "data not restored after <=1-bit error: got "
         << faulted_data.to_string();
      return os.str();
    }
  } else if (hsiao != nullptr) {
    const HsiaoStatus st =
        hsiao->detect_and_correct(faulted_data, faulted_checks);
    const HsiaoStatus want = c.flips.empty() ? HsiaoStatus::kNoError
                             : c.flips.size() == 1
                                 ? HsiaoStatus::kCorrected
                                 : HsiaoStatus::kDoubleDetected;
    if (st != want) {
      os << "status " << hsiao_status_name(st) << ", expected "
         << hsiao_status_name(want);
      return os.str();
    }
    if (c.flips.size() <= 1) {
      if (!(faulted_data == data)) {
        os << "data not restored after <=1-bit error: got "
           << faulted_data.to_string();
        return os.str();
      }
    } else if (!(faulted_data == pre_decode_data)) {
      // SEC-DED contract: a detected double must never be "corrected".
      os << "decoder modified data on a detected double error: got "
         << faulted_data.to_string();
      return os.str();
    }
  } else {
    const RsStatus st = rs->detect_and_correct(faulted_data, faulted_checks);
    const RsStatus want =
        c.flips.empty() ? RsStatus::kNoError : RsStatus::kCorrected;
    if (st != want) {
      os << "status " << rs_status_name(st) << ", expected "
         << rs_status_name(want);
      return os.str();
    }
    if (!(faulted_data == data)) {
      os << "data not restored after single-symbol error: got "
         << faulted_data.to_string();
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_tmr_case(const DecodeCase& c) {
  const std::size_t n = c.data_bits;
  if (n < 2 || (n & (n - 1)) != 0 ||
      n > (std::size_t{1} << kMaxLutInputs)) {
    return "invalid case: tmr table size must be a power of two in [2, " +
           std::to_string(std::size_t{1} << kMaxLutInputs) + "]";
  }
  const bool interleaved = c.code == "tmr-interleaved";
  std::vector<bool> entry_hit(n, false);
  for (std::size_t p : c.flips) {
    if (p >= 3 * n) {
      return "invalid case: flip position out of the triplicated store";
    }
    const std::size_t entry = interleaved ? p / 3 : p % n;
    if (entry_hit[entry]) {
      return "invalid case: two flips on copies of the same entry";
    }
    entry_hit[entry] = true;
  }
  const BitVec tt = BitVec::from_string(c.data);
  if (tt.size() != n) {
    return "invalid case: data string length != table size";
  }
  const CodedLut lut(tt, interleaved ? LutCoding::kTmrInterleaved
                                     : LutCoding::kTmr);
  BitVec mask(lut.fault_sites());
  for (std::size_t p : c.flips) {
    mask.flip(p);
  }
  LutAccessStats stats;
  for (std::size_t addr = 0; addr < n; ++addr) {
    const bool got = lut.read(static_cast<std::uint32_t>(addr),
                              MaskView(mask, 0, mask.size()), &stats);
    if (got != tt.get(addr)) {
      std::ostringstream os;
      os << c.code << "(" << n << ") data=" << c.data
         << " flips=" << flips_string(c.flips) << ": majority vote at addr "
         << addr << " returned " << got << ", golden " << tt.get(addr)
         << " (one faulted copy must never win)";
      return os.str();
    }
  }
  if (stats.tmr_disagreements != c.flips.size()) {
    std::ostringstream os;
    os << c.code << "(" << n << ") flips=" << flips_string(c.flips)
       << ": tmr_disagreements " << stats.tmr_disagreements
       << " over one full read pass, expected one per flipped entry ("
       << c.flips.size() << ")";
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> run_decode_case(const DecodeCase& c) {
  if (c.code == "tmr" || c.code == "tmr-interleaved") {
    return run_tmr_case(c);
  }
  if (c.code == "hamming" || c.code == "hsiao" || c.code == "rs") {
    return run_info_code_case(c);
  }
  return "invalid case: unknown code '" + c.code + "'";
}

std::string decode_case_json(const DecodeCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kDecodeName << "\", \"code\": \"" << c.code
     << "\", \"data_bits\": " << c.data_bits << ", \"data\": \"" << c.data
     << "\", \"flips\": [";
  for (std::size_t i = 0; i < c.flips.size(); ++i) {
    os << (i == 0 ? "" : ", ") << c.flips[i];
  }
  os << "]}";
  return os.str();
}

std::optional<DecodeCase> decode_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kDecodeName)) {
    return std::nullopt;
  }
  const JsonValue* code = require(doc, "code", JsonValue::Kind::kString);
  const JsonValue* bits =
      require(doc, "data_bits", JsonValue::Kind::kNumber);
  const JsonValue* data = require(doc, "data", JsonValue::Kind::kString);
  const JsonValue* flips = require(doc, "flips", JsonValue::Kind::kArray);
  if (code == nullptr || bits == nullptr || data == nullptr ||
      flips == nullptr) {
    return std::nullopt;
  }
  DecodeCase c;
  c.code = code->as_string();
  const std::optional<std::uint64_t> n = bits->as_u64();
  if (!n.has_value() || *n == 0 || *n > 4096) {
    return std::nullopt;
  }
  c.data_bits = static_cast<std::size_t>(*n);
  c.data = data->as_string();
  for (char ch : c.data) {
    if (ch != '0' && ch != '1') {
      return std::nullopt;
    }
  }
  for (const JsonValue& f : flips->items()) {
    const std::optional<std::uint64_t> p = f.as_u64();
    if (!p.has_value()) {
      return std::nullopt;
    }
    c.flips.push_back(static_cast<std::size_t>(*p));
  }
  return c;
}

std::vector<DecodeCase> shrink_decode_case(const DecodeCase& c) {
  std::vector<DecodeCase> out;
  for (std::size_t i = 0; i < c.flips.size(); ++i) {
    DecodeCase s = c;
    s.flips.erase(s.flips.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(s));
  }
  if (c.data.find('1') != std::string::npos) {
    DecodeCase s = c;
    s.data.assign(c.data.size(), '0');
    out.push_back(std::move(s));
  }
  return out;
}

// ------------------------------------------- pipeline-differential

constexpr const char* kPipelineName = "pipeline-differential";

/// A generated cell program checked against the pipelined cell's own
/// architectural contracts. Mode "program" drives the 4-deep
/// CellPipeline: under zero faults every instruction must retire, in
/// program order, with the fault-free reference value; flipping
/// forwarding must change timing only (never a retired value, never
/// making the forwarded run slower); and a faulted run replayed after
/// reset() must be bit-identical, counters included. Mode "legacy"
/// drives the full ProcessorCell flit/mode machinery: a zero-fault cell
/// must round-trip every instruction packet to a result packet carrying
/// golden_alu, and two identically-configured faulted cells fed the same
/// flits must emit identical packets.
struct PipelineCase {
  std::string mode;  // legacy | program
  std::string alu;   // execute-stage ALU (program mode only)
  std::size_t length = 1;
  std::uint64_t seed = 0;
  std::size_t registers = 8;
  bool forwarding = true;
  double fetch_percent = 0.0;
  double decode_percent = 0.0;
  double execute_percent = 0.0;
  double writeback_percent = 0.0;
};

PipelineCase generate_pipeline_case(Gen& g) {
  PipelineCase c;
  c.mode = g.pick({std::string("legacy"), std::string("program")});
  const std::vector<AluSpec>& specs = all_specs();
  c.alu = specs[g.below(specs.size())].name;
  // Legacy programs must fit the cell's 32-word memory in one shift-in.
  c.length = g.length(1, c.mode == "legacy" ? 16 : 48);
  c.seed = g.u64();
  c.registers = static_cast<std::size_t>(g.in_range(2, 8));
  c.forwarding = g.boolean();
  const auto rate = [&g]() -> double {
    return kPercentPool[g.below(kPercentPool.size())];
  };
  if (g.boolean(0.7)) {
    c.fetch_percent = rate();
    c.decode_percent = rate();
    c.execute_percent = rate();
    c.writeback_percent = rate();
  }
  return c;
}

std::string pipeline_case_json(const PipelineCase& c) {
  std::ostringstream os;
  os << "{\"family\": \"" << kPipelineName << "\", \"mode\": \"" << c.mode
     << "\", \"alu\": \"" << json_escape(c.alu)
     << "\", \"length\": " << c.length << ", \"seed\": " << c.seed
     << ", \"registers\": " << c.registers << ", \"forwarding\": "
     << (c.forwarding ? "true" : "false")
     << ", \"fetch_percent\": " << json_double(c.fetch_percent)
     << ", \"decode_percent\": " << json_double(c.decode_percent)
     << ", \"execute_percent\": " << json_double(c.execute_percent)
     << ", \"writeback_percent\": " << json_double(c.writeback_percent)
     << "}";
  return os.str();
}

std::optional<PipelineCase> pipeline_case_from_json(const JsonValue& doc) {
  if (!family_matches(doc, kPipelineName)) {
    return std::nullopt;
  }
  const JsonValue* mode = require(doc, "mode", JsonValue::Kind::kString);
  const JsonValue* alu = require(doc, "alu", JsonValue::Kind::kString);
  const JsonValue* length = require(doc, "length", JsonValue::Kind::kNumber);
  const JsonValue* seed = require(doc, "seed", JsonValue::Kind::kNumber);
  const JsonValue* registers =
      require(doc, "registers", JsonValue::Kind::kNumber);
  const JsonValue* forwarding = doc.find("forwarding");
  const JsonValue* fp =
      require(doc, "fetch_percent", JsonValue::Kind::kNumber);
  const JsonValue* dp =
      require(doc, "decode_percent", JsonValue::Kind::kNumber);
  const JsonValue* ep =
      require(doc, "execute_percent", JsonValue::Kind::kNumber);
  const JsonValue* wp =
      require(doc, "writeback_percent", JsonValue::Kind::kNumber);
  if (mode == nullptr || alu == nullptr || length == nullptr ||
      seed == nullptr || registers == nullptr || forwarding == nullptr ||
      forwarding->kind() != JsonValue::Kind::kBool || fp == nullptr ||
      dp == nullptr || ep == nullptr || wp == nullptr) {
    return std::nullopt;
  }
  PipelineCase c;
  c.mode = mode->as_string();
  c.alu = alu->as_string();
  c.length = static_cast<std::size_t>(length->as_u64().value_or(1));
  c.seed = seed->as_u64().value_or(0);
  c.registers = static_cast<std::size_t>(registers->as_u64().value_or(8));
  c.forwarding = forwarding->as_bool();
  c.fetch_percent = fp->as_double().value_or(0.0);
  c.decode_percent = dp->as_double().value_or(0.0);
  c.execute_percent = ep->as_double().value_or(0.0);
  c.writeback_percent = wp->as_double().value_or(0.0);
  return c;
}

/// The generated NBXS program of a pipeline case — a pure function of
/// the case seed, so replayed cases rebuild it exactly.
std::vector<Instruction> pipeline_case_program(const PipelineCase& c) {
  Rng rng(derive_seed({c.seed, fnv1a64("pipeline-case-program")}));
  return random_stream(c.length, rng);
}

std::optional<std::string> retired_mismatch(
    const std::vector<RetiredOp>& base, const std::vector<RetiredOp>& got,
    const char* variant) {
  if (got.size() != base.size()) {
    return std::string(variant) + " retired " + std::to_string(got.size()) +
           " instructions, baseline " + std::to_string(base.size());
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (got[i].index != base[i].index ||
        got[i].instr_id != base[i].instr_id ||
        got[i].value != base[i].value) {
      std::ostringstream os;
      os << variant << " diverges at retirement " << i << ": (index "
         << got[i].index << ", id " << got[i].instr_id << ", value "
         << int{got[i].value} << ") != baseline (index " << base[i].index
         << ", id " << base[i].instr_id << ", value "
         << int{base[i].value} << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_program_pipeline_case(const PipelineCase& c) {
  const std::vector<Instruction> program = pipeline_case_program(c);

  PipelineConfig ideal;
  ideal.registers = c.registers;
  ideal.forwarding = c.forwarding;
  ideal.execute_alu = c.alu;
  ideal.seed = c.seed;
  CellPipeline pipe(ideal, CellId{1, 2});
  if (!pipe.load(program)) {
    return "invalid case: unknown execute alu '" + c.alu + "'";
  }
  const PipelineRunResult res = pipe.run();
  std::ostringstream os;
  os << "program[" << program.size() << "] alu=" << c.alu << " regs="
     << c.registers << (c.forwarding ? " fwd" : " no-fwd") << ": ";
  if (!res.completed) {
    os << "zero-fault run hit the cycle bound with work in flight";
    return os.str();
  }
  const std::vector<std::uint8_t> ref =
      CellPipeline::reference_results(program, c.registers);
  if (pipe.retired().size() != program.size()) {
    os << "zero-fault run retired " << pipe.retired().size() << " of "
       << program.size() << " instructions";
    return os.str();
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    const RetiredOp& r = pipe.retired()[i];
    if (r.index != i || r.value != ref[i]) {
      os << "zero-fault retirement " << i << " is (index " << r.index
         << ", value " << int{r.value} << "), reference (index " << i
         << ", value " << int{ref[i]} << ")";
      return os.str();
    }
  }
  if (res.correct != program.size() || res.percent_correct != 100.0) {
    os << "zero-fault scoring counted " << res.correct << "/"
       << program.size() << " correct";
    return os.str();
  }

  // Forwarding is a timing optimisation only: flipping it must not move
  // any retired value, and the forwarded schedule never runs slower.
  PipelineConfig flipped = ideal;
  flipped.forwarding = !ideal.forwarding;
  CellPipeline other(flipped, CellId{1, 2});
  if (!other.load(program)) {
    return "invalid case: unknown execute alu '" + c.alu + "'";
  }
  (void)other.run();
  if (std::optional<std::string> msg = retired_mismatch(
          pipe.retired(), other.retired(), "forwarding-flipped")) {
    os << *msg;
    return os.str();
  }
  const std::uint64_t fwd_cycles =
      ideal.forwarding ? pipe.counters().cycles : other.counters().cycles;
  const std::uint64_t stall_cycles =
      ideal.forwarding ? other.counters().cycles : pipe.counters().cycles;
  if (fwd_cycles > stall_cycles) {
    os << "forwarding ran " << fwd_cycles << " cycles, stalling only "
       << stall_cycles;
    return os.str();
  }

  // Faulted determinism: reset() re-arms the per-stage RNG streams, so
  // an identical re-run must be bit-identical — retired list, per-stage
  // fault counters, everything.
  PipelineConfig faulted = ideal;
  faulted.fetch.fault_percent = c.fetch_percent;
  faulted.decode.fault_percent = c.decode_percent;
  faulted.execute.fault_percent = c.execute_percent;
  faulted.writeback.fault_percent = c.writeback_percent;
  CellPipeline noisy(faulted, CellId{1, 2});
  if (!noisy.load(program)) {
    return "invalid case: unknown execute alu '" + c.alu + "'";
  }
  (void)noisy.run();
  const std::vector<RetiredOp> first = noisy.retired();
  const obs::PipelineCounters counters = noisy.counters();
  noisy.reset();
  (void)noisy.run();
  if (std::optional<std::string> msg = retired_mismatch(
          first, noisy.retired(), "faulted-replay")) {
    os << *msg;
    return os.str();
  }
  if (!(noisy.counters() == counters)) {
    os << "faulted replay moved the pipeline counters";
    return os.str();
  }
  return std::nullopt;
}

/// Shift-in → compute → shift-out round trip of one legacy cell:
/// returns the result packets it emits toward the control processor.
std::vector<Packet> run_legacy_cell(const CellConfig& cfg,
                                    const std::vector<Instruction>& program) {
  ProcessorCell cell(CellId{0, 0}, cfg);
  cell.set_mode(CellMode::kShiftIn);
  for (const Instruction& in : program) {
    Packet p;
    p.kind = PacketKind::kInstruction;
    p.dest = CellId{0, 0};
    p.instr_id = in.id;
    p.op = in.op;
    p.operand1 = in.a;
    p.operand2 = in.b;
    for (std::uint8_t f : encode_packet_flits(p)) {
      cell.receive_flit(Port::kTop, f);
      cell.step();
    }
  }
  cell.set_mode(CellMode::kCompute);
  for (std::size_t i = 0; i < cell.memory().capacity() + 8; ++i) {
    cell.step();
  }
  cell.set_mode(CellMode::kShiftOut);
  PacketAssembler rx;
  std::vector<Packet> results;
  const std::size_t budget = (program.size() + 2) * (kPacketFlits + 2);
  for (std::size_t i = 0; i < budget; ++i) {
    cell.step();
    if (const std::optional<std::uint8_t> f = cell.pop_output(Port::kTop)) {
      if (const std::optional<Packet> p = rx.push(*f)) {
        results.push_back(*p);
      }
    }
  }
  return results;
}

std::optional<std::string> run_legacy_pipeline_case(const PipelineCase& c) {
  const std::vector<Instruction> program = pipeline_case_program(c);

  // Zero faults: every instruction packet round-trips to a result packet
  // carrying the behavioural golden, in storage order.
  CellConfig ideal;
  ideal.seed = c.seed;
  const std::vector<Packet> clean = run_legacy_cell(ideal, program);
  std::ostringstream os;
  os << "legacy[" << program.size() << "]: ";
  if (clean.size() != program.size()) {
    os << "zero-fault cell emitted " << clean.size() << " results for "
       << program.size() << " instructions";
    return os.str();
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    const Instruction& in = program[i];
    const Packet& out = clean[i];
    if (out.kind != PacketKind::kResult || out.instr_id != in.id ||
        out.result != golden_alu(in.op, in.a, in.b)) {
      os << "instr " << i << " (" << opcode_name(in.op) << " " << int{in.a}
         << ", " << int{in.b} << "): result packet (id " << out.instr_id
         << ", value " << int{out.result} << ") != golden (id " << in.id
         << ", value " << int{golden_alu(in.op, in.a, in.b)} << ")";
      return os.str();
    }
  }

  // Faulted determinism: two identically-configured cells fed the same
  // flits must emit identical packets — the degenerate 1-deep pipeline
  // draws its fault masks from the cell seed alone.
  CellConfig faulted = ideal;
  faulted.alu_fault_percent = c.execute_percent;
  faulted.memory_upsets_per_cycle = c.fetch_percent / 100.0;
  const std::vector<Packet> a = run_legacy_cell(faulted, program);
  const std::vector<Packet> b = run_legacy_cell(faulted, program);
  if (a.size() != b.size()) {
    os << "faulted twin cells emitted " << a.size() << " vs " << b.size()
       << " packets";
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      os << "faulted twin cells diverge at packet " << i << " (id "
         << a[i].instr_id << " vs " << b[i].instr_id << ", value "
         << int{a[i].result} << " vs " << int{b[i].result} << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> run_pipeline_case(const PipelineCase& c) {
  if (c.length < 1 || (c.mode == "legacy" && c.length > 16) ||
      c.length > 4096) {
    return "invalid case: length out of range for mode '" + c.mode + "'";
  }
  if (c.registers < 2 || c.registers > 8) {
    return "invalid case: registers out of [2, 8]";
  }
  const double rates[] = {c.fetch_percent, c.decode_percent,
                          c.execute_percent, c.writeback_percent};
  for (const double r : rates) {
    if (!(r >= 0.0) || r > 100.0) {
      return "invalid case: stage percent out of [0, 100]";
    }
  }
  if (c.mode == "program") {
    return run_program_pipeline_case(c);
  }
  if (c.mode == "legacy") {
    return run_legacy_pipeline_case(c);
  }
  return "invalid case: unknown mode '" + c.mode + "'";
}

std::vector<PipelineCase> shrink_pipeline_case(const PipelineCase& c) {
  std::vector<PipelineCase> out;
  if (c.length > 1) {
    PipelineCase s = c;
    s.length = c.length / 2;
    out.push_back(std::move(s));
    PipelineCase one = c;
    one.length = 1;
    out.push_back(std::move(one));
  }
  const auto zero = [&out, &c](double PipelineCase::* field) {
    if (c.*field != 0.0) {
      PipelineCase s = c;
      s.*field = 0.0;
      out.push_back(std::move(s));
    }
  };
  zero(&PipelineCase::fetch_percent);
  zero(&PipelineCase::decode_percent);
  zero(&PipelineCase::execute_percent);
  zero(&PipelineCase::writeback_percent);
  if (!c.forwarding) {
    PipelineCase s = c;
    s.forwarding = true;
    out.push_back(std::move(s));
  }
  if (c.registers != 8) {
    PipelineCase s = c;
    s.registers = 8;
    out.push_back(std::move(s));
  }
  if (c.alu != "aluns") {
    PipelineCase s = c;
    s.alu = "aluns";
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

Property engine_differential_property() {
  PropertyDef<EngineCase> def;
  def.name = kEngineName;
  def.generate = generate_engine_case;
  def.run = run_engine_case;
  def.shrink = shrink_engine_case;
  def.to_json = engine_case_json;
  def.from_json = engine_case_from_json;
  return Property::make(std::move(def));
}

Property simd_differential_property() {
  PropertyDef<SimdCase> def;
  def.name = kSimdName;
  def.generate = generate_simd_case;
  def.run = run_simd_case;
  def.shrink = shrink_simd_case;
  def.to_json = simd_case_json;
  def.from_json = simd_case_from_json;
  return Property::make(std::move(def));
}

Property scenario_differential_property() {
  PropertyDef<ScenarioCase> def;
  def.name = kScenarioName;
  def.generate = generate_scenario_case;
  def.run = run_scenario_case;
  def.shrink = shrink_scenario_case;
  def.to_json = scenario_case_json;
  def.from_json = scenario_case_from_json;
  return Property::make(std::move(def));
}

Property alu_vs_cmos_property() {
  PropertyDef<AluCase> def;
  def.name = kAluName;
  def.generate = generate_alu_case;
  def.run = run_alu_case;
  def.shrink = shrink_alu_case;
  def.to_json = alu_case_json;
  def.from_json = alu_case_from_json;
  return Property::make(std::move(def));
}

Property decode_t_error_property() {
  PropertyDef<DecodeCase> def;
  def.name = kDecodeName;
  def.generate = generate_decode_case;
  def.run = run_decode_case;
  def.shrink = shrink_decode_case;
  def.to_json = decode_case_json;
  def.from_json = decode_case_from_json;
  return Property::make(std::move(def));
}

Property pipeline_differential_property() {
  PropertyDef<PipelineCase> def;
  def.name = kPipelineName;
  def.generate = generate_pipeline_case;
  def.run = run_pipeline_case;
  def.shrink = shrink_pipeline_case;
  def.to_json = pipeline_case_json;
  def.from_json = pipeline_case_from_json;
  return Property::make(std::move(def));
}

std::vector<Property> oracle_properties() {
  std::vector<Property> out;
  out.push_back(engine_differential_property());
  out.push_back(simd_differential_property());
  out.push_back(scenario_differential_property());
  out.push_back(pipeline_differential_property());
  out.push_back(alu_vs_cmos_property());
  out.push_back(decode_t_error_property());
  out.push_back(serve_differential_property());
  return out;
}

std::optional<Property> oracle_property_by_name(std::string_view name) {
  for (Property& p : oracle_properties()) {
    if (p.name() == name) {
      return std::move(p);
    }
  }
  return std::nullopt;
}

std::size_t default_smoke_cases(std::string_view property_name) {
  if (property_name == kEngineName) {
    return 24;
  }
  if (property_name == kSimdName) {
    return 16;
  }
  if (property_name == kScenarioName) {
    return 12;
  }
  if (property_name == kPipelineName) {
    return 16;
  }
  if (property_name == kAluName) {
    return 80;
  }
  if (property_name == kDecodeName) {
    return 120;
  }
  if (property_name == "serve-differential") {
    return 12;
  }
  return 50;
}

}  // namespace nbx::check
