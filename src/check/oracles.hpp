// oracles.hpp — the differential-oracle property families.
//
// The paper's argument is statistical, so the statistics machinery gets
// the strongest oracle treatment we can afford: rather than pinning a
// handful of hand-picked goldens, seven families of *generated* cases
// cross-examine independent implementations of the same contract:
//
//   engine-differential — a generated SweepSpec (ALU, percents, trials,
//       seed, fault policy, scope, burst) must produce bit-identical
//       DataPoints through every execution path of the TrialEngine:
//       scalar serial, batched lanes (1..512, single- and multi-word),
//       thread pool, and the anatomy variants (whose counters must also
//       agree scalar-vs-batched).
//
//   simd-differential — a generated SweepSpec run through the wide lane
//       engine at a generated lane count (1..512) under EVERY
//       compiled-in + CPU-supported SIMD dispatch tier, forced one at a
//       time via simd::ScopedTierOverride: each tier's DataPoints and
//       anatomy counters must be bit-identical to the scalar trial
//       engine's (hence every tier pairwise identical too).
//
//   scenario-differential — a generated FaultScenario (wear-out rate
//       schedule: constant/linear/weibull toward base*end_factor, plus
//       2-D burst geometry) must be bit-identical through scalar serial,
//       scalar threaded, every forced SIMD tier at a generated lane
//       count, and the threaded wide engine — scenario counters
//       included; an i.i.d.-degenerate schedule must reproduce the
//       default-scenario sweep bitwise. The same case also checks the
//       generator laws directly: schedule anchored at the base rate,
//       monotone to clamp(base*end_factor), in [0, 100]; burst flips
//       inside their declared L×R neighbourhood (anchors replayed from a
//       twin Rng); remap plans injective and never reading a
//       known-defective site when feasible.
//
//   pipeline-differential — a generated NBXS program through the
//       pipelined cell. Mode "program": under zero faults the 4-deep
//       CellPipeline must retire every instruction in order with the
//       architectural reference value, flipping forwarding must change
//       timing only (and never make forwarding slower), and a faulted
//       run replayed after reset() must be bit-identical, per-stage
//       counters included. Mode "legacy": the ProcessorCell's
//       shift-in/compute/shift-out machinery must round-trip every
//       instruction packet to a golden_alu result packet under zero
//       faults, and identically-seeded faulted twin cells must emit
//       identical packets.
//
//   alu-vs-cmos — generated (op, a, b) instruction streams under zero
//       faults: every catalogued ALU, the gate-level CMOS reference
//       netlist, and the behavioural golden_alu must all agree, and the
//       module layer must report no disagreement/invalid flags.
//
//   serve-differential — a generated SweepSpec rendered to the nbxd wire
//       format and submitted to a live in-process SweepService (generated
//       worker count and shard granularity) must return bytes identical
//       to the canonical rendering of a direct scalar TrialEngine run
//       (points AND anatomy counters); resubmitting must hit the
//       content-addressed cache — identical bytes, exactly one computed
//       job; and a truncated/bit-flipped/garbage copy of the payload must
//       always yield a structured JSON response (truncation/garbage a
//       status:"error" one), never a crash.
//
//   decode-t-error — generated codewords with generated <= t-error
//       masks: hamming (t=1) and rs (one symbol) must restore the data
//       exactly; hsiao must restore at t=1 and refuse to touch the word
//       on a detected double; TMR LUT reads must return the golden bit
//       whenever at most one copy of each entry is hit.
//
// Failures shrink and serialize through check/property.hpp; replay is
// dispatched by property name (see oracle_property_by_name).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "check/property.hpp"

namespace nbx::check {

Property engine_differential_property();
Property simd_differential_property();
Property scenario_differential_property();
Property pipeline_differential_property();
Property alu_vs_cmos_property();
Property decode_t_error_property();
Property serve_differential_property();

/// The oracle families, in reporting order.
std::vector<Property> oracle_properties();

/// Looks up one family by its name (replay dispatch).
std::optional<Property> oracle_property_by_name(std::string_view name);

/// Per-family case count for the bounded check_smoke run. The totals
/// across oracle_properties() exceed 200 cases while staying well under
/// the 5-second smoke budget.
std::size_t default_smoke_cases(std::string_view property_name);

}  // namespace nbx::check
