// json_value.hpp — a minimal read-side JSON document model.
//
// The repo emits JSON everywhere (obs/json, sim/bench_json) but until
// nbxcheck never had to *read* any: counterexample replay does. A
// JsonValue is an immutable parsed document; numbers keep their source
// lexeme so 64-bit seeds survive the trip through a repro file without
// being squeezed through a double.
//
// Deliberately small: no writer (repro serialization hand-rolls its JSON
// like every other emitter here), no streaming, documents are expected to
// be the few hundred bytes of a minimized counterexample.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nbx::check {

/// One parsed JSON value. Object member order is preserved (repro files
/// are written and diffed by humans).
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Returns nullopt on any syntax error; `error`, when non-null,
  /// receives a byte offset + reason for diagnostics.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; each requires the matching kind.
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// The number's source lexeme, e.g. "13129664871889695161".
  [[nodiscard]] const std::string& number_lexeme() const { return string_; }
  /// Number conversions; nullopt when the lexeme does not fit the type
  /// exactly (u64/i64) or the value is not a number.
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const;
  [[nodiscard]] std::optional<std::int64_t> as_i64() const;
  [[nodiscard]] std::optional<double> as_double() const;

  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }

  /// Object members in document order.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const {
    return members_;
  }
  /// First member named `key`, or null when absent / not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string string_;  // string value, or number lexeme
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace nbx::check
