#include "check/property.hpp"

namespace nbx::check {

std::optional<Failure> Property::run_cases(const CheckConfig& cfg,
                                           RunStats* stats) const {
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    const std::uint64_t seed = case_seed(cfg.seed, i);
    Rng rng(seed);
    // Size ramps 0 -> 1 across the run; a single-case run goes straight
    // to full size (soak rounds with cases=1 should not stay tiny).
    const double size =
        cfg.cases <= 1 ? 1.0
                       : static_cast<double>(i) /
                             static_cast<double>(cfg.cases - 1);
    if (stats != nullptr) {
      ++stats->cases;
    }
    std::optional<Failure> failure = run_case_(rng, size, cfg, stats);
    if (failure.has_value()) {
      failure->case_seed = seed;
      failure->case_index = i;
      return failure;
    }
  }
  return std::nullopt;
}

}  // namespace nbx::check
