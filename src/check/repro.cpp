#include "check/repro.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace nbx::check {
namespace {

// Re-serializes a parsed JsonValue (used to embed the already-parsed
// case object of a Failure, which arrives as a JSON string instead).
void write_value(std::ostream& os, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      return;
    case JsonValue::Kind::kBool:
      os << (v.as_bool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      os << v.number_lexeme();
      return;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(v.as_string()) << '"';
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) {
          os << ", ";
        }
        first = false;
        write_value(os, item);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) {
          os << ", ";
        }
        first = false;
        os << '"' << json_escape(key) << "\": ";
        write_value(os, value);
      }
      os << '}';
      return;
    }
  }
}

}  // namespace

std::string repro_json(const Failure& f) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"nbxcheck\": " << kReproVersion << ",\n";
  os << "  \"property\": \"" << json_escape(f.property) << "\",\n";
  os << "  \"case_seed\": " << f.case_seed << ",\n";
  os << "  \"case_index\": " << f.case_index << ",\n";
  os << "  \"shrink_steps\": " << f.shrink_steps << ",\n";
  os << "  \"message\": \"" << json_escape(f.message) << "\",\n";
  os << "  \"case\": " << f.case_json << "\n";
  os << "}\n";
  return os.str();
}

std::optional<std::string> write_repro(const Failure& f,
                                       const std::string& dir,
                                       std::string* error) {
  namespace fs = std::filesystem;
  std::ostringstream name;
  name << f.property << "-" << std::hex << f.case_seed << ".json";
  const fs::path path = fs::path(dir) / name.str();
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path.string() + " for writing";
    }
    return std::nullopt;
  }
  out << repro_json(f);
  out.close();
  if (!out) {
    if (error != nullptr) {
      *error = "short write to " + path.string();
    }
    return std::nullopt;
  }
  return path.string();
}

std::optional<Repro> load_repro(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot read " + path;
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::parse(buf.str(), &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) {
      *error = path + ": " + parse_error;
    }
    return std::nullopt;
  }
  const JsonValue* version = doc->find("nbxcheck");
  if (version == nullptr || version->as_i64() != kReproVersion) {
    if (error != nullptr) {
      *error = path + ": missing or unsupported \"nbxcheck\" version";
    }
    return std::nullopt;
  }
  const JsonValue* property = doc->find("property");
  const JsonValue* case_value = doc->find("case");
  if (property == nullptr || !property->is_string() ||
      case_value == nullptr) {
    if (error != nullptr) {
      *error = path + ": missing \"property\" or \"case\"";
    }
    return std::nullopt;
  }
  Repro repro;
  repro.property = property->as_string();
  repro.case_value = *case_value;
  if (const JsonValue* seed = doc->find("case_seed")) {
    repro.case_seed = seed->as_u64().value_or(0);
  }
  if (const JsonValue* message = doc->find("message")) {
    if (message->is_string()) {
      repro.message = message->as_string();
    }
  }
  return repro;
}

std::optional<Failure> run_with_repro(const Property& property,
                                      const CheckConfig& cfg,
                                      const std::string& repro_dir,
                                      std::string* repro_path,
                                      RunStats* stats) {
  std::optional<Failure> failure = property.run_cases(cfg, stats);
  if (failure.has_value() && !repro_dir.empty()) {
    std::string error;
    std::optional<std::string> path =
        write_repro(*failure, repro_dir, &error);
    if (repro_path != nullptr) {
      *repro_path = path.value_or("(unwritable: " + error + ")");
    }
  } else if (repro_path != nullptr) {
    repro_path->clear();
  }
  return failure;
}

}  // namespace nbx::check
