#include "check/json_value.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace nbx::check {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber || string_.empty() || string_[0] == '-') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(string_.c_str(), &end, 10);
  if (errno != 0 || end != string_.c_str() + string_.size()) {
    return std::nullopt;  // overflow, or a fractional/exponent lexeme
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<std::int64_t> JsonValue::as_i64() const {
  if (kind_ != Kind::kNumber || string_.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(string_.c_str(), &end, 10);
  if (errno != 0 || end != string_.c_str() + string_.size()) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(v);
}

std::optional<double> JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(string_.c_str(), &end);
  if (errno != 0 || end != string_.c_str() + string_.size()) {
    return std::nullopt;
  }
  return v;
}

/// Recursive-descent parser over the whole document. Depth-limited so a
/// malicious repro file cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) {
        *error = "at byte " + std::to_string(pos_) + ": " + reason_;
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "at byte " + std::to_string(pos_) +
                 ": trailing characters after document";
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string reason_;

  bool fail(std::string reason) {
    if (reason_.empty()) {
      reason_ = std::move(reason);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail(std::string("expected '") + std::string(lit) + "'");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    skip_ws();
    if (at_end()) {
      return fail("unexpected end of input");
    }
    switch (peek()) {
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return consume_literal("null");
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return consume_literal("false");
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) {
        return false;
      }
      out.items_.push_back(std::move(item));
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return fail("expected ',' or ']' in array");
      }
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return fail("expected ':' after object key");
      }
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return fail("expected ',' or '}' in object");
      }
    }
  }

  bool parse_string(std::string& out) {
    consume('"');
    out.clear();
    while (true) {
      if (at_end()) {
        return fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        return fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) {
            return false;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) {
        return fail("truncated \\u escape");
      }
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  // Basic-plane code point to UTF-8 (surrogate pairs are not combined —
  // repro files are ASCII in practice).
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-') && at_end()) {
      return fail("lone '-' is not a number");
    }
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail("expected a value");
    }
    if (peek() == '0') {
      ++pos_;
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        return fail("leading zeros are not allowed");
      }
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (consume('.')) {
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digits required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digits required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.string_ = std::string(text_.substr(start, pos_ - start));
    return true;
  }
};

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return JsonParser(text).run(error);
}

}  // namespace nbx::check
