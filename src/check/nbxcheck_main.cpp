// nbxcheck_main.cpp — the nbxcheck property-testing front-end.
//
// Modes:
//   nbxcheck                         run every oracle family (smoke depth)
//   nbxcheck --cases 5000            deeper run, same determinism
//   nbxcheck --property decode-t-error --seed 7
//   nbxcheck --soak --seconds 600    rounds of fresh seeds until time is up
//   nbxcheck --replay file.json...   re-execute serialized counterexamples
//   nbxcheck --list                  print the family names
//
// Exit codes: 0 = all properties held (for --replay: no case still
// fails), 1 = a property failed (a repro file was written) or a replayed
// case still reproduces, 2 = usage or file error.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "check/property.hpp"
#include "check/repro.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"

namespace {

using nbx::CliArgs;
using nbx::check::CheckConfig;
using nbx::check::Failure;
using nbx::check::Property;
using nbx::check::ReplayOutcome;
using nbx::check::Repro;
using nbx::check::RunStats;

void print_usage(std::ostream& os) {
  os << "usage: nbxcheck [--property NAME] [--cases N] [--seed S]\n"
        "                [--max-shrink N] [--repro-dir DIR]\n"
        "       nbxcheck --soak [--seconds N] [flags as above]\n"
        "       nbxcheck --replay FILE [FILE...]\n"
        "       nbxcheck --list\n"
        "\n"
        "  --property NAME   run one family (see --list); default: all\n"
        "  --cases N         cases per family; default: per-family smoke "
        "depth\n"
        "  --seed S          run seed (default 2026)\n"
        "  --max-shrink N    shrink step budget per failure (default "
        "2000)\n"
        "  --repro-dir DIR   where failures are serialized (default "
        "check/repro); empty disables\n"
        "  --soak            repeat with fresh derived seeds until "
        "--seconds elapse\n"
        "  --seconds N       soak duration (default 30)\n"
        "  --replay          re-execute repro files given as positional "
        "args\n"
        "  --json            append one machine-readable summary line\n";
}

std::vector<Property> select_properties(const std::string& only,
                                        std::string* error) {
  if (only.empty()) {
    return nbx::check::oracle_properties();
  }
  std::optional<Property> p = nbx::check::oracle_property_by_name(only);
  if (!p.has_value()) {
    *error = "unknown property '" + only + "' (see --list)";
    return {};
  }
  std::vector<Property> out;
  out.push_back(std::move(*p));
  return out;
}

struct FamilyReport {
  std::string property;
  std::size_t cases = 0;
  std::size_t shrink_steps = 0;
  bool failed = false;
};

/// Runs one family once and prints the human-readable verdict. Returns
/// the failure, if any (already serialized into repro_dir).
std::optional<Failure> run_family(const Property& p, const CheckConfig& cfg,
                                  const std::string& repro_dir,
                                  FamilyReport* report) {
  RunStats stats;
  std::string repro_path;
  std::optional<Failure> failure =
      nbx::check::run_with_repro(p, cfg, repro_dir, &repro_path, &stats);
  report->property = p.name();
  report->cases = stats.cases;
  report->shrink_steps = stats.shrink_steps;
  report->failed = failure.has_value();
  if (!failure.has_value()) {
    std::cout << "  ok   " << p.name() << "  (" << stats.cases
              << " cases, seed " << cfg.seed << ")\n";
    return std::nullopt;
  }
  std::cout << "  FAIL " << p.name() << "  case " << failure->case_index
            << " (case_seed " << failure->case_seed << ", "
            << failure->shrink_steps << " shrink steps)\n"
            << "       " << failure->message << "\n"
            << "       case: " << failure->case_json << "\n";
  if (!repro_path.empty()) {
    std::cout << "       repro written: " << repro_path << "\n"
              << "       replay with: nbxcheck --replay " << repro_path
              << "\n";
  }
  return failure;
}

void print_json_summary(const std::vector<FamilyReport>& reports,
                        std::uint64_t seed, int exit_code) {
  std::cout << "{\"nbxcheck\": {\"seed\": " << seed
            << ", \"exit\": " << exit_code << ", \"families\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const FamilyReport& r = reports[i];
    std::cout << (i == 0 ? "" : ", ") << "{\"property\": \""
              << nbx::json_escape(r.property) << "\", \"cases\": " << r.cases
              << ", \"shrink_steps\": " << r.shrink_steps
              << ", \"failed\": " << (r.failed ? "true" : "false") << "}";
  }
  std::cout << "]}}\n";
}

int run_mode(const std::vector<Property>& properties, const CliArgs& args,
             std::uint64_t seed, const std::string& repro_dir,
             bool json_summary) {
  CheckConfig cfg;
  cfg.seed = seed;
  cfg.max_shrink_steps = static_cast<std::size_t>(
      args.get_int("max-shrink", 2000));
  const std::int64_t cases = args.get_int("cases", 0);
  std::vector<FamilyReport> reports;
  bool any_failed = false;
  for (const Property& p : properties) {
    cfg.cases = cases > 0
                    ? static_cast<std::size_t>(cases)
                    : nbx::check::default_smoke_cases(p.name());
    FamilyReport report;
    any_failed |= run_family(p, cfg, repro_dir, &report).has_value();
    reports.push_back(report);
  }
  const int exit_code = any_failed ? 1 : 0;
  if (json_summary) {
    print_json_summary(reports, seed, exit_code);
  }
  return exit_code;
}

int soak_mode(const std::vector<Property>& properties, const CliArgs& args,
              std::uint64_t base_seed, const std::string& repro_dir,
              bool json_summary) {
  const double seconds = args.get_double("seconds", 30.0);
  CheckConfig cfg;
  cfg.max_shrink_steps =
      static_cast<std::size_t>(args.get_int("max-shrink", 2000));
  const std::int64_t cases = args.get_int("cases", 0);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  std::vector<FamilyReport> totals;
  for (const Property& p : properties) {
    FamilyReport t;
    t.property = p.name();
    totals.push_back(t);
  }
  std::uint64_t round = 0;
  bool any_failed = false;
  while (elapsed() < seconds && !any_failed) {
    // Every round draws a fresh run seed derived from the base seed, so
    // a soak covers new ground each round yet any failure's case_seed
    // still pins the exact case.
    cfg.seed = nbx::derive_seed({base_seed, 0x736f616bULL /*"soak"*/, round});
    std::cout << "soak round " << round << " (seed " << cfg.seed << ", "
              << static_cast<std::uint64_t>(elapsed()) << "s elapsed)\n";
    for (std::size_t i = 0; i < properties.size(); ++i) {
      cfg.cases = cases > 0
                      ? static_cast<std::size_t>(cases)
                      : nbx::check::default_smoke_cases(
                            properties[i].name());
      FamilyReport report;
      any_failed |=
          run_family(properties[i], cfg, repro_dir, &report).has_value();
      totals[i].cases += report.cases;
      totals[i].shrink_steps += report.shrink_steps;
      totals[i].failed |= report.failed;
      if (any_failed) {
        break;
      }
    }
    ++round;
  }
  std::cout << (any_failed ? "soak: FAILED after " : "soak: clean after ")
            << round << " round(s), "
            << static_cast<std::uint64_t>(elapsed()) << "s\n";
  const int exit_code = any_failed ? 1 : 0;
  if (json_summary) {
    print_json_summary(totals, base_seed, exit_code);
  }
  return exit_code;
}

int replay_mode(const CliArgs& args) {
  // CliArgs binds the token after --replay as the flag's value; accept it
  // as the first file so `--replay a.json b.json` works as expected.
  std::vector<std::string> files;
  if (!args.get("replay").empty()) {
    files.push_back(args.get("replay"));
  }
  files.insert(files.end(), args.positional().begin(),
               args.positional().end());
  if (files.empty()) {
    std::cerr << "nbxcheck --replay: no repro files given\n";
    return 2;
  }
  int exit_code = 0;
  for (const std::string& file : files) {
    std::string error;
    std::optional<Repro> repro = nbx::check::load_repro(file, &error);
    if (!repro.has_value()) {
      std::cerr << "error: " << error << "\n";
      exit_code = 2;
      continue;
    }
    std::optional<Property> p =
        nbx::check::oracle_property_by_name(repro->property);
    if (!p.has_value()) {
      std::cerr << "error: " << file << ": no such property '"
                << repro->property << "'\n";
      exit_code = 2;
      continue;
    }
    const ReplayOutcome outcome = p->replay(repro->case_value);
    if (!outcome.loaded) {
      std::cerr << "error: " << file << ": " << outcome.load_error << "\n";
      exit_code = 2;
      continue;
    }
    if (outcome.failure.has_value()) {
      std::cout << "REPRODUCED " << file << " [" << repro->property
                << "]\n           " << *outcome.failure << "\n";
      if (exit_code == 0) {
        exit_code = 1;
      }
    } else {
      std::cout << "pass       " << file << " [" << repro->property
                << "] — case no longer fails (fixed? delete the file)\n";
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::vector<std::string> known = {
      "property", "cases",   "seed", "max-shrink", "repro-dir",
      "soak",     "seconds", "replay", "list",     "json",
      "help"};
  const std::string bad_flags = args.unknown_flag_message(known);
  if (!bad_flags.empty()) {
    std::cerr << bad_flags << "\n";
    print_usage(std::cerr);
    return 2;
  }
  if (args.has("help")) {
    print_usage(std::cout);
    return 0;
  }
  if (args.has("list")) {
    for (const Property& p : nbx::check::oracle_properties()) {
      std::cout << p.name() << "\n";
    }
    return 0;
  }
  if (args.has("replay")) {
    return replay_mode(args);
  }

  std::string error;
  const std::vector<Property> properties =
      select_properties(args.get("property"), &error);
  if (properties.empty()) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const std::string repro_dir =
      args.has("repro-dir") ? args.get("repro-dir") : "check/repro";
  const bool json_summary = args.has("json");
  if (args.has("soak")) {
    return soak_mode(properties, args, seed, repro_dir, json_summary);
  }
  return run_mode(properties, args, seed, repro_dir, json_summary);
}
