// table_render.hpp — plain-text table / CSV rendering for bench output.
//
// The benches regenerate the paper's figures as aligned text tables (rows
// = injected fault percentage, columns = ALU implementations) and as CSV
// files for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace nbx {

/// A rectangular text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; its size must match the header.
  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns, a header underline, and two-space
  /// gutters.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting — cells must not contain commas).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the point, trimming to a
/// compact fixed representation ("2.00", "0.05", "98.44").
std::string fmt_double(double v, int prec = 2);

/// Formats large rates in scientific notation ("3.6e+23").
std::string fmt_sci(double v, int prec = 2);

}  // namespace nbx
