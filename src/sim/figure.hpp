// figure.hpp — reproduction of the paper's result figures (Figures 7-9).
//
// Each figure plots "percent of instructions which are correct" against
// the 18 injected-fault percentages for the four bit-level techniques at
// one module level:
//   Figure 7 — no module-level fault tolerance   (aluncmos alunh alunn aluns)
//   Figure 8 — time redundancy                   (alutcmos aluth alutn aluts)
//   Figure 9 — space redundancy                  (aluscmos alush alusn aluss)
//
// The paper also states qualitative anchors in §5 prose; those are kept
// here as PaperAnchor records so benches can print paper-vs-measured and
// verify the *shape* of each reproduced curve.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "alu/module_alu.hpp"
#include "sim/trial_engine.hpp"

namespace nbx {

/// Declarative description of one paper figure.
struct FigureSpec {
  std::string id;       ///< "fig7" etc.
  std::string title;    ///< the paper's caption gist
  ModuleLevel module;   ///< module level shared by the four series
  std::vector<std::string> alus;  ///< series, in the paper's legend order
};

FigureSpec figure7_spec();
FigureSpec figure8_spec();
FigureSpec figure9_spec();

/// All three result figures in paper order.
std::vector<FigureSpec> all_figure_specs();

/// A fully evaluated figure: one sweep per ALU series.
struct FigureResult {
  FigureSpec spec;
  std::vector<double> percents;
  std::vector<std::vector<DataPoint>> series;  ///< [alu][percent index]
};

/// Runs a figure: builds each ALU, sweeps the given percentages with the
/// paper's trial structure (trials per workload x 2 workloads per point).
/// `par` fans the sweeps' trials across worker threads; results are
/// bit-identical to the serial default for every thread count.
/// `on_point`, when set, is invoked after each completed data point
/// (series.size() * percents.size() calls total) — benches hang a
/// ProgressReporter off it. Per-trial seeds depend on the fault percent's
/// value, not its index, so chunking the sweep per point for progress
/// reporting cannot change any number.
FigureResult run_figure(const FigureSpec& spec,
                        const std::vector<double>& percents,
                        int trials_per_workload, std::uint64_t seed,
                        const ParallelConfig& par = {},
                        const std::function<void()>& on_point = {});

/// Prints the figure as a table: rows = fault %, columns = the ALUs.
void print_figure(std::ostream& os, const FigureResult& fig);

/// Writes the same data as CSV.
void write_figure_csv(std::ostream& os, const FigureResult& fig);

/// A qualitative claim from §5 prose used for shape validation:
/// mean %-correct of `alu` at `fault_percent` should lie within
/// [min_percent_correct, max_percent_correct].
struct PaperAnchor {
  std::string figure;  ///< "fig7" / "fig8" / "fig9"
  std::string alu;
  double fault_percent;
  double min_percent_correct;
  double max_percent_correct;
  std::string claim;  ///< the prose being checked
};

/// The §5 anchors for all three figures.
std::vector<PaperAnchor> paper_anchors();

/// Looks up the measured value for an anchor; returns true and sets
/// `measured` when the (alu, percent) pair exists in `fig`.
bool lookup_measured(const FigureResult& fig, const PaperAnchor& a,
                     double* measured);

}  // namespace nbx
