#include "sim/bench_json.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>

namespace nbx {

double BenchReport::trials_per_second() const {
  return wall_seconds > 0.0
             ? static_cast<double>(trials) / wall_seconds
             : 0.0;
}

namespace {

void write_point(std::ostream& os, const DataPoint& p,
                 const obs::Counters* metrics, const char* indent) {
  os << indent << "{\"fault_percent\": " << json_double(p.fault_percent)
     << ", \"mean_percent_correct\": "
     << json_double(p.mean_percent_correct)
     << ", \"stddev\": " << json_double(p.stddev)
     << ", \"ci95\": " << json_double(p.ci95)
     << ", \"samples\": " << p.samples;
  if (metrics != nullptr) {
    os << ", \"metrics\": ";
    obs::write_counters_json(os, *metrics);
  }
  os << "}";
}

}  // namespace

void write_bench_json(std::ostream& os, const BenchReport& r) {
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(r.bench) << "\",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"threads\": " << r.threads << ",\n";
  os << "  \"trials_per_workload\": " << r.trials_per_workload << ",\n";
  os << "  \"trials\": " << r.trials << ",\n";
  os << "  \"wall_seconds\": " << json_double(r.wall_seconds) << ",\n";
  os << "  \"trials_per_second\": " << json_double(r.trials_per_second())
     << ",\n";
  // Every writer funnels through here, so every BENCH_*.json carries a
  // manifest — capture one now unless the caller pinned its own.
  const RunManifest manifest = r.manifest.captured
                                   ? r.manifest
                                   : RunManifest::capture(r.threads, r.lanes);
  os << "  \"manifest\": ";
  write_manifest_json(os, manifest, "  ");
  os << ",\n";
  os << "  \"metrics\": {";
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(r.metrics[i].first)
       << "\": " << json_double(r.metrics[i].second);
  }
  os << "},\n";
  os << "  \"extra\": {";
  for (std::size_t i = 0; i < r.extra.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(r.extra[i].first)
       << "\": \"" << json_escape(r.extra[i].second) << "\"";
  }
  os << "},\n";
  os << "  \"sweeps\": [";
  for (std::size_t s = 0; s < r.sweeps.size(); ++s) {
    os << (s ? ",\n" : "\n");
    os << "    {\"alu\": \"" << json_escape(r.sweeps[s].alu)
       << "\", \"points\": [\n";
    const bool with_metrics =
        r.sweeps[s].point_metrics.size() == r.sweeps[s].points.size();
    for (std::size_t p = 0; p < r.sweeps[s].points.size(); ++p) {
      write_point(os, r.sweeps[s].points[p],
                  with_metrics ? &r.sweeps[s].point_metrics[p] : nullptr,
                  "      ");
      os << (p + 1 < r.sweeps[s].points.size() ? ",\n" : "\n");
    }
    os << "    ]}";
  }
  os << (r.sweeps.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

std::string save_bench_json(const BenchReport& report,
                            const std::string& path) {
  const std::string out_path =
      path.empty() ? "BENCH_" + report.bench + ".json" : path;
  // Benches are often pointed at results directories that don't exist
  // yet (CI scratch trees); create them rather than failing silently.
  const std::filesystem::path parent =
      std::filesystem::path(out_path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::cerr << "error: cannot create directory '" << parent.string()
                << "' for bench JSON: " << ec.message() << "\n";
      return "";
    }
  }
  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "error: cannot open '" << out_path
              << "' for writing bench JSON\n";
    return "";
  }
  write_bench_json(os, report);
  os.flush();
  if (!os) {
    std::cerr << "error: write to '" << out_path << "' failed\n";
    return "";
  }
  return out_path;
}

}  // namespace nbx
