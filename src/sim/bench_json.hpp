// bench_json.hpp — machine-readable results sink for the bench harnesses.
//
// Every bench that reproduces a paper table or figure also emits a JSON
// document (BENCH_<name>.json) carrying the same numbers as its text
// tables plus run metadata — wall-clock seconds, thread count, trial
// throughput — so CI and later PRs can track performance and detect
// output drift without scraping stdout. The schema is documented in
// README.md ("BENCH_sweep.json schema").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "sim/experiment.hpp"
#include "sim/manifest.hpp"

namespace nbx {

/// One ALU's evaluated sweep inside a bench report.
struct SweepRecord {
  std::string alu;
  std::vector<DataPoint> points;
  /// Optional fault anatomy, parallel to `points` (index i holds the
  /// aggregated counters behind points[i], as produced by
  /// TrialEngine::sweep_anatomy). Leave empty to omit the per-point "metrics"
  /// block from the JSON.
  std::vector<obs::Counters> point_metrics;
};

/// Top-level bench result document, serialized as one JSON object.
struct BenchReport {
  std::string bench;             ///< short name, e.g. "sweep", "fig7"
  std::uint64_t seed = 0;
  unsigned threads = 1;          ///< resolved worker-thread count
  unsigned lanes = 0;            ///< batch lanes (0 = scalar backend)
  int trials_per_workload = 0;
  std::size_t trials = 0;        ///< total trials executed
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> metrics;  ///< named scalars
  std::vector<std::pair<std::string, std::string>> extra;  ///< string tags
  std::vector<SweepRecord> sweeps;
  /// Run provenance. Leave default-constructed and write_bench_json
  /// captures one automatically (threads/lanes from the fields above);
  /// set it explicitly to pin a specific context.
  RunManifest manifest;

  /// trials / wall_seconds (0 when the clock read 0).
  [[nodiscard]] double trials_per_second() const;
};

// json_escape / json_double live in obs/json.hpp (included above); they
// moved there so the obs exporters can share them, and remain visible
// here for existing callers.

/// Writes `report` as pretty-printed JSON.
void write_bench_json(std::ostream& os, const BenchReport& report);

/// Writes the report to `path`, or to "BENCH_<bench>.json" in the
/// current directory when `path` is empty. Creates missing parent
/// directories. Returns the path written; on I/O failure prints a
/// diagnostic to stderr and returns the empty string.
std::string save_bench_json(const BenchReport& report,
                            const std::string& path = "");

}  // namespace nbx
