#include "sim/manifest.hpp"

#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <string>

#include "common/rng.hpp"
#include "fault/mask_generator.hpp"
#include "obs/json.hpp"
#include "simd/simd_dispatch.hpp"

// Build-context macros are injected by src/sim/CMakeLists.txt
// (set_source_files_properties on this file only, so edits to the git
// state rebuild one translation unit).
#ifndef NBX_GIT_DESCRIBE
#define NBX_GIT_DESCRIBE "unknown"
#endif
#ifndef NBX_BUILD_TYPE
#define NBX_BUILD_TYPE "unknown"
#endif

namespace nbx {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string hostname_string() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) != 0) {
    return "unknown";
  }
  return buf;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

void hash_line(std::uint64_t& h, const std::string& line) {
  // Chain FNV-1a over "key=value\n" lines — the same canonical shape
  // the golden-registry fingerprint uses.
  for (const char c : line) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<unsigned char>('\n');
  h *= 1099511628211ULL;
}

}  // namespace

std::uint64_t seed_chain_fingerprint() {
  // Fixed probes across the three derivation primitives the harness
  // builds every experiment on. The exact values are irrelevant; their
  // stability is the contract.
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  hash_line(h, "derive_seed_1_2_3=" +
                   std::to_string(derive_seed({1, 2, 3})));
  hash_line(h, "fnv1a64_aluss=" + std::to_string(fnv1a64("aluss")));
  hash_line(h, "trial_seed_aluss_2pct=" +
                   std::to_string(MaskGenerator::trial_seed(
                       2026, fnv1a64("aluss"), 2.0, 0, 0)));
  hash_line(h, "trial_seed_w3_t7=" +
                   std::to_string(MaskGenerator::trial_seed(
                       2026, fnv1a64("aluss"), 10.0, 3, 7)));
  return h;
}

RunManifest RunManifest::capture(unsigned threads, unsigned lanes) {
  RunManifest m;
  m.git_describe = NBX_GIT_DESCRIBE;
  m.build_type = NBX_BUILD_TYPE;
  m.compiler = compiler_string();
  m.hostname = hostname_string();
  m.timestamp_utc = utc_timestamp();
  m.cpu_simd_tier = std::string(simd::tier_name(simd::best_tier()));
  m.active_simd_tier = std::string(simd::tier_name(simd::active_tier()));
  m.seed_chain_fingerprint = nbx::seed_chain_fingerprint();
  m.golden_registry_fingerprint = kGoldenRegistryFingerprint;
  m.threads = threads;
  m.lanes = lanes;
  m.captured = true;
  return m;
}

void write_manifest_json(std::ostream& os, const RunManifest& m,
                         const char* indent) {
  const std::string in = indent;
  os << "{\n";
  os << in << "  \"schema_version\": " << m.schema_version << ",\n";
  os << in << "  \"git_describe\": \"" << json_escape(m.git_describe)
     << "\",\n";
  os << in << "  \"build_type\": \"" << json_escape(m.build_type)
     << "\",\n";
  os << in << "  \"compiler\": \"" << json_escape(m.compiler) << "\",\n";
  os << in << "  \"hostname\": \"" << json_escape(m.hostname) << "\",\n";
  os << in << "  \"timestamp_utc\": \"" << json_escape(m.timestamp_utc)
     << "\",\n";
  os << in << "  \"cpu_simd_tier\": \"" << json_escape(m.cpu_simd_tier)
     << "\",\n";
  os << in << "  \"active_simd_tier\": \""
     << json_escape(m.active_simd_tier) << "\",\n";
  os << in << "  \"seed_chain_fingerprint\": " << m.seed_chain_fingerprint
     << ",\n";
  os << in << "  \"golden_registry_fingerprint\": "
     << m.golden_registry_fingerprint << ",\n";
  os << in << "  \"threads\": " << m.threads << ",\n";
  os << in << "  \"lanes\": " << m.lanes << "\n";
  os << in << "}";
}

}  // namespace nbx
