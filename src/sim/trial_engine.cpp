#include "sim/trial_engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include <string>

#include "common/batch_bitvec.hpp"
#include "obs/metrics.hpp"
#include "simd/lane_engine.hpp"
#include "simd/simd_dispatch.hpp"
#include "simd/wide_mirror.hpp"
#include "workload/image_ops.hpp"

namespace nbx {

TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng,
                      obs::Counters* anatomy) {
  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites = cfg.scope == InjectionScope::kDatapathOnly
                                       ? cfg.datapath_sites
                                       : total_sites;
  assert(inject_sites <= total_sites);
  // The fault *fraction* applies to the eligible sites; for the paper's
  // kAll scope this is exactly "a given fraction of the fault injection
  // points" (§4).
  const MaskGenerator gen(inject_sites, cfg.fault_percent, cfg.policy,
                          cfg.burst_length, cfg.burst_rows,
                          cfg.burst_row_stride);

  // Per-worker scalar arena: generate() clears/resizes as needed, so a
  // steady-state trial over the same ALU allocates nothing (the scalar
  // analogue of the wide backend's WideArena; see
  // tests/audit/alloc_audit_test.cpp).
  thread_local BitVec mask;
  thread_local BitVec scratch;
  if (mask.size() != total_sites) {
    mask = BitVec(total_sites);
  }
  if (scratch.size() != inject_sites) {
    scratch = BitVec(inject_sites);
  }
  TrialResult res;
  res.instructions = stream.size();
  if (anatomy != nullptr) {
    // One sink serves both levels: the module wrapper / voter hooks and
    // the coded-LUT decode hooks beneath them.
    res.stats.obs = anatomy;
    res.stats.lut.obs = anatomy;
  }
  for (const Instruction& ins : stream) {
    // "After each ALU computation, we generate a new fault mask" (§4).
    if (inject_sites == total_sites) {
      gen.generate(rng, mask);
    } else {
      gen.generate(rng, scratch);
      mask.clear_all();
      for (std::size_t i = 0; i < inject_sites; ++i) {
        if (scratch.get(i)) {
          mask.set(i, true);
        }
      }
    }
    if (anatomy != nullptr) {
      ++anatomy->injection.masks_generated;
      // Floyd's sampling sets exactly faults_per_computation() bits for
      // the counting policies; only Bernoulli (per-site coin flips) and
      // burst (edge truncation, overlapping strikes) need the real
      // popcount. Skipping it keeps the sink's hot-loop cost flat.
      anatomy->injection.faults_injected +=
          (cfg.policy == FaultCountPolicy::kRoundNearest ||
           cfg.policy == FaultCountPolicy::kFloor)
              ? gen.faults_per_computation()
              : mask.popcount();
    }
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, total_sites),
                                      &res.stats);
    const bool wrong = out.value != ins.golden;
    if (wrong) {
      ++res.incorrect;
    }
    if (anatomy != nullptr) {
      auto& e = anatomy->end_to_end;
      ++e.instructions;
      const bool flagged = out.disagreement || !out.valid;
      if (wrong) {
        ++(flagged ? e.caught_errors : e.silent_corruptions);
      } else {
        ++(flagged ? e.false_alarms : e.correct);
      }
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

namespace {

// Scenario-attributed accounting for one trial — pure arithmetic over
// the trial's coordinates (no Rng, no simulation state), evaluated by
// the scalar and wide backends from the same inputs so their totals are
// bit-identical by construction.
void account_scenario(obs::Counters& c, const SweepSpec& spec,
                      double base_percent, double effective_percent,
                      const MaskGenerator& gen, std::size_t instructions) {
  auto& s = c.scenario;
  if (!spec.scenario.is_iid()) {
    ++s.scheduled_trials;
    if (std::bit_cast<std::uint64_t>(effective_percent) !=
        std::bit_cast<std::uint64_t>(base_percent)) {
      ++s.wear_adjusted_trials;
    }
  }
  s.burst_strikes +=
      static_cast<std::uint64_t>(gen.strikes_per_computation()) *
      static_cast<std::uint64_t>(instructions);
}

// One (percent, workload, trial) cell of the flat
// [percent][workload][trial] grid: decompose the index, derive the
// counter-based seed, run the trial into the cell's absolute sample /
// counter slot. Shared verbatim by the in-engine scalar backend and the
// public shard surface (run_sweep_items), which is what makes
// out-of-engine shard-and-merge bit-identical by construction.
void run_one_sweep_item(const IAlu& alu,
                        const std::vector<std::vector<Instruction>>& streams,
                        const SweepSpec& spec, std::uint64_t alu_hash,
                        std::size_t trials, std::size_t per_percent,
                        std::size_t i, double* samples,
                        obs::Counters* per_item) {
  const std::size_t pi = i / per_percent;
  const std::size_t w = (i % per_percent) / trials;
  const std::size_t t = i % trials;
  // The scenario's rate schedule maps (base percent, trial index) to
  // this trial's effective rate; the effective rate seeds the trial by
  // bit pattern, so a constant schedule reproduces the i.i.d. model's
  // seeds — and therefore its results — exactly.
  const double effective =
      spec.scenario.schedule.at(spec.percents[pi], t, trials);
  TrialConfig cfg;
  cfg.fault_percent = effective;
  cfg.policy = spec.policy;
  cfg.burst_length = spec.burst_length;
  cfg.scope = spec.scope;
  cfg.datapath_sites = spec.datapath_sites;
  cfg.burst_rows = spec.scenario.burst_rows;
  cfg.burst_row_stride = spec.scenario.burst_row_stride;
  Rng rng(MaskGenerator::trial_seed(spec.seed, alu_hash, effective, w, t));
  obs::Counters* sink = per_item != nullptr ? &per_item[i] : nullptr;
  samples[i] = run_trial(alu, streams[w], cfg, rng, sink).percent_correct;
  if (sink != nullptr) {
    const std::size_t inject_sites =
        spec.scope == InjectionScope::kDatapathOnly ? spec.datapath_sites
                                                    : alu.fault_sites();
    const MaskGenerator gen(inject_sites, effective, spec.policy,
                            spec.burst_length, spec.scenario.burst_rows,
                            spec.scenario.burst_row_stride);
    account_scenario(*sink, spec, spec.percents[pi], effective, gen,
                     streams[w].size());
  }
}

// The scalar sweep backend: one item = one (percent, workload, trial)
// cell of the grid, indexed [percent][workload][trial] flattened. Every
// cell's RNG seed is a pure function of its coordinates
// (MaskGenerator::trial_seed) and every cell writes its own sample /
// counter slot, so the output is bit-identical for any thread count or
// schedule.
struct ScalarSweepBackend {
  const IAlu& alu;
  const std::vector<std::vector<Instruction>>& streams;
  const SweepSpec& spec;
  std::uint64_t alu_hash;
  std::size_t trials;
  std::size_t per_percent;
  std::vector<double>& samples;
  std::vector<obs::Counters>* per_item;  ///< null = no anatomy

  [[nodiscard]] std::size_t item_count() const { return samples.size(); }
  [[nodiscard]] std::string_view stage() const { return "trial"; }

  void run_item(std::size_t i) const {
    run_one_sweep_item(alu, streams, spec, alu_hash, trials, per_percent, i,
                       samples.data(),
                       per_item != nullptr ? per_item->data() : nullptr);
  }
};

/// The per-worker wide-engine arena. thread_local so the thread pool's
/// workers each reuse their own scratch across every lane group they
/// run: after the first group of a run, the hot path allocates nothing
/// (tests/audit/alloc_audit_test.cpp counts).
simd::WideArena& wide_arena() {
  thread_local simd::WideArena arena;
  return arena;
}

// The bit-parallel sweep backend: one item = one *lane group* — up to
// batch_lanes trials of one (percent, workload) cell packed into the
// lanes of one BatchBitVec (1..8 lane words per site, i.e. up to 512
// lanes). Every lane keeps its own Rng seeded with the exact scalar
// trial seed and the shared mask-generation core consumes it
// draw-for-draw like the scalar path, so each lane regenerates its
// trial's mask stream verbatim; the SIMD lane engine (src/simd/) then
// computes all lanes at once on the dispatch tier resolved once per
// run. Same sample vector, same flat [percent][workload][trial] order,
// bit-identical values on every tier and every width.
struct WideSweepBackend {
  const IAlu& alu;
  const simd::WideMirror& mirror;
  simd::SimdTier tier;
  std::size_t lane_words;
  const std::vector<std::vector<Instruction>>& streams;
  const SweepSpec& spec;
  std::uint64_t alu_hash;
  std::size_t trials;
  unsigned lanes;
  std::size_t groups_per_cell;
  std::size_t total_groups;
  std::size_t total_sites;
  std::size_t inject_sites;
  std::vector<double>& samples;
  std::vector<obs::Counters>* per_group;  ///< null = no anatomy

  [[nodiscard]] std::size_t item_count() const { return total_groups; }
  [[nodiscard]] std::string_view stage() const { return "lane_group"; }

  void run_item(std::size_t item) const {
    const std::size_t workloads = streams.size();
    const std::size_t cell = item / groups_per_cell;
    const std::size_t group = item % groups_per_cell;
    const std::size_t pi = cell / workloads;
    const std::size_t w = cell % workloads;
    const std::size_t first_trial = group * lanes;
    const auto in_group = static_cast<unsigned>(
        std::min<std::size_t>(lanes, trials - first_trial));
    const std::vector<Instruction>& stream = streams[w];

    const MaskGenerator gen(inject_sites, spec.percents[pi], spec.policy,
                            spec.burst_length, spec.scenario.burst_rows,
                            spec.scenario.burst_row_stride);

    // Shape this worker's arena: reshape/resize never shrink capacity,
    // so in steady state none of this allocates.
    simd::WideArena& ar = wide_arena();
    ar.mask.reshape(total_sites, lane_words);
    ar.rngs.clear();
    if (ar.rngs.capacity() < in_group) {
      ar.rngs.reserve(lanes);
    }
    // Under a wear-out schedule each lane is a different trial index and
    // therefore runs at its own effective rate: per-lane generators (the
    // i.i.d. fast path keeps the single shared generator and a null
    // job.gens). Seeds always hash the lane's *effective* rate — exactly
    // what the scalar backend does — so every tier and width reproduces
    // the scalar mask streams verbatim.
    const bool iid = spec.scenario.is_iid();
    ar.gens.clear();
    if (!iid && ar.gens.capacity() < in_group) {
      ar.gens.reserve(lanes);
    }
    for (unsigned l = 0; l < in_group; ++l) {
      const double effective = spec.scenario.schedule.at(
          spec.percents[pi], first_trial + l, trials);
      ar.rngs.emplace_back(MaskGenerator::trial_seed(
          spec.seed, alu_hash, effective, w, first_trial + l));
      if (!iid) {
        ar.gens.emplace_back(inject_sites, effective, spec.policy,
                             spec.burst_length, spec.scenario.burst_rows,
                             spec.scenario.burst_row_stride);
      }
    }
    if (ar.incorrect.size() < in_group) {
      ar.incorrect.resize(lanes);
    }
    std::fill_n(ar.incorrect.begin(), in_group, 0u);
    const std::size_t node_words =
        mirror.max_netlist_nodes() * lane_words;
    if (ar.nodes.size() < node_words) {
      ar.nodes.resize(node_words);
    }

    simd::WideGroupJob job;
    job.mirror = &mirror;
    job.gen = &gen;
    job.gens = iid ? nullptr : ar.gens.data();
    job.stream = stream.data();
    job.stream_len = stream.size();
    job.in_group = in_group;
    job.total_sites = total_sites;
    job.inject_sites = inject_sites;
    job.anatomy = per_group != nullptr ? &(*per_group)[item] : nullptr;
    job.arena = &ar;
    simd::run_wide_group(tier, lane_words, job);

    if (job.anatomy != nullptr) {
      for (unsigned l = 0; l < in_group; ++l) {
        const double effective = spec.scenario.schedule.at(
            spec.percents[pi], first_trial + l, trials);
        account_scenario(*job.anatomy, spec, spec.percents[pi], effective,
                         iid ? gen : ar.gens[l], stream.size());
      }
    }

    const std::size_t base = cell * trials + first_trial;
    for (unsigned l = 0; l < in_group; ++l) {
      // Same arithmetic as run_trial's percent_correct, so the doubles
      // match bit for bit.
      samples[base + l] =
          stream.empty()
              ? 100.0
              : 100.0 *
                    static_cast<double>(stream.size() -
                                        ar.incorrect[l]) /
                    static_cast<double>(stream.size());
    }
  }
};

// Runs the grid through whichever sweep backend parallel().batch_lanes
// selects; returns one percent_correct sample per (percent, workload,
// trial) cell plus, when `anatomy` is non-null, per-percent counter
// totals merged in index order after the pool joins. (Merge order is
// cosmetic — integer sums commute — which is exactly why the totals are
// bit-identical for every schedule.)
std::vector<double> run_grid(
    const TrialEngine& engine, const IAlu& alu,
    const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec, std::vector<obs::Counters>* anatomy) {
  const std::size_t workloads = streams.size();
  const auto trials = static_cast<std::size_t>(spec.trials_per_workload);
  const std::size_t per_percent = workloads * trials;
  const std::uint64_t alu_hash = fnv1a64(alu.name());
  std::vector<double> samples(spec.percents.size() * per_percent, 0.0);

  if (engine.parallel().batch_lanes == 0) {
    std::vector<obs::Counters> per_item;
    if (anatomy != nullptr) {
      per_item.resize(samples.size());
    }
    ScalarSweepBackend backend{
        alu,     streams,     spec,
        alu_hash, trials,     per_percent,
        samples, anatomy != nullptr ? &per_item : nullptr};
    engine.execute(backend);
    if (anatomy != nullptr) {
      anatomy->assign(spec.percents.size(), obs::Counters{});
      for (std::size_t i = 0; i < samples.size(); ++i) {
        (*anatomy)[i / per_percent] += per_item[i];
      }
    }
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      const std::vector<obs::MetricLabel> labels{
          {"backend", "scalar"}, {"simd_tier", "scalar"}, {"lanes", "0"}};
      reg->counter("engine_trials_total", labels).add(samples.size());
      reg->counter("engine_runs_total", labels).increment();
    }
    return samples;
  }

  const unsigned lanes =
      std::min(std::max(engine.parallel().batch_lanes, 1u), kMaxBatchLanes);
  const std::size_t lane_words = lane_words_for(lanes);
  const std::size_t groups_per_cell =
      trials == 0 ? 0 : (trials + lanes - 1) / lanes;
  const std::size_t cells = spec.percents.size() * workloads;
  const std::size_t total_groups = cells * groups_per_cell;
  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites = spec.scope == InjectionScope::kDatapathOnly
                                       ? spec.datapath_sites
                                       : total_sites;
  assert(inject_sites <= total_sites);

  // The dispatch tier is resolved exactly once per run, before workers
  // start (set_tier_override / NBX_SIMD_TIER are not read concurrently);
  // the structural mirror is read-only and shared by all worker threads
  // (each worker's scratch lives in its thread_local WideArena).
  const simd::SimdTier tier = simd::active_tier();
  const std::unique_ptr<simd::WideMirror> mirror =
      simd::WideMirror::create(alu);
  std::vector<obs::Counters> per_group;
  if (anatomy != nullptr) {
    per_group.resize(total_groups);
  }
  WideSweepBackend backend{alu,
                           *mirror,
                           tier,
                           lane_words,
                           streams,
                           spec,
                           alu_hash,
                           trials,
                           lanes,
                           groups_per_cell,
                           total_groups,
                           total_sites,
                           inject_sites,
                           samples,
                           anatomy != nullptr ? &per_group : nullptr};
  engine.execute(backend);
  if (anatomy != nullptr) {
    anatomy->assign(spec.percents.size(), obs::Counters{});
    const std::size_t groups_per_percent = workloads * groups_per_cell;
    for (std::size_t i = 0; i < total_groups; ++i) {
      (*anatomy)[i / groups_per_percent] += per_group[i];
    }
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    const std::vector<obs::MetricLabel> labels{
        {"backend", "wide"},
        {"simd_tier", std::string(simd::tier_name(tier))},
        {"lanes", std::to_string(lanes)}};
    reg->counter("engine_trials_total", labels).add(samples.size());
    reg->counter("engine_runs_total", labels).increment();
    reg->counter("engine_lane_groups_total", labels).add(total_groups);
    reg->counter("engine_lane_slots_total", labels)
        .add(total_groups * lanes);
    // Occupancy: active lane slots / provisioned lane slots, in percent.
    if (total_groups > 0) {
      reg->gauge("engine_lane_occupancy_percent", labels)
          .set(100.0 * static_cast<double>(samples.size()) /
               static_cast<double>(total_groups * lanes));
    }
    // The calling thread participates in the pool, so its arena is a
    // representative worker footprint.
    reg->gauge("engine_arena_bytes", labels)
        .set(static_cast<double>(wide_arena().bytes()));
    reg->gauge("engine_simd_tier").set(static_cast<double>(tier));
  }
  return samples;
}

// One engine pass over every percent in the spec: grid + per-percent
// fold (under the "fold" profiler stage; fold_sweep_samples is the
// public fold — fixed workload-major order, so the floating-point
// accumulation is identical to the serial path regardless of which
// threads produced the samples).
SweepAnatomy run_chunk(const TrialEngine& engine, const IAlu& alu,
                       const std::vector<std::vector<Instruction>>& streams,
                       const SweepSpec& spec, bool want_anatomy) {
  SweepAnatomy result;
  const std::vector<double> samples = run_grid(
      engine, alu, streams, spec, want_anatomy ? &result.metrics : nullptr);
  obs::Profiler* profiler = engine.parallel().profiler;
  const std::size_t st_fold =
      profiler != nullptr ? profiler->stage_index("fold") : 0;
  const obs::ScopedTimer timer(profiler, st_fold);
  const std::size_t per_percent =
      streams.size() * static_cast<std::size_t>(spec.trials_per_workload);
  result.points.reserve(spec.percents.size());
  for (std::size_t pi = 0; pi < spec.percents.size(); ++pi) {
    result.points.push_back(fold_sweep_samples(alu.name(), spec.percents[pi],
                                               samples.data() +
                                                   pi * per_percent,
                                               per_percent));
  }
  return result;
}

}  // namespace

std::size_t sweep_item_count(
    const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec) {
  return spec.percents.size() * streams.size() *
         static_cast<std::size_t>(spec.trials_per_workload);
}

void run_sweep_items(const IAlu& alu,
                     const std::vector<std::vector<Instruction>>& streams,
                     const SweepSpec& spec, std::size_t first,
                     std::size_t last, double* samples,
                     obs::Counters* per_item) {
  const auto trials = static_cast<std::size_t>(spec.trials_per_workload);
  const std::size_t per_percent = streams.size() * trials;
  const std::uint64_t alu_hash = fnv1a64(alu.name());
  for (std::size_t i = first; i < last; ++i) {
    run_one_sweep_item(alu, streams, spec, alu_hash, trials, per_percent, i,
                       samples, per_item);
  }
}

DataPoint fold_sweep_samples(std::string_view alu_name, double fault_percent,
                             const double* samples, std::size_t count) {
  RunningStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(samples[i]);
  }
  DataPoint p;
  p.alu = std::string(alu_name);
  p.fault_percent = fault_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

SweepAnatomy TrialEngine::run_spec(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec, bool want_anatomy) const {
  if (on_point_ && spec.percents.size() > 1) {
    // Progress wanted: evaluate one percent at a time and tick in
    // between. Identical numbers — per-trial seeds hash the percent's
    // value, not its position in the sweep.
    SweepAnatomy out;
    out.points.reserve(spec.percents.size());
    SweepSpec one = spec;
    for (const double pct : spec.percents) {
      one.percents.assign(1, pct);
      SweepAnatomy r = run_chunk(*this, alu, streams, one, want_anatomy);
      out.points.push_back(std::move(r.points.front()));
      if (want_anatomy) {
        out.metrics.push_back(std::move(r.metrics.front()));
      }
      on_point_();
    }
    return out;
  }
  SweepAnatomy out = run_chunk(*this, alu, streams, spec, want_anatomy);
  if (on_point_) {
    for (std::size_t pi = 0; pi < spec.percents.size(); ++pi) {
      on_point_();
    }
  }
  return out;
}

std::vector<DataPoint> TrialEngine::sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec) const {
  return run_spec(alu, streams, spec, /*want_anatomy=*/false).points;
}

SweepAnatomy TrialEngine::sweep_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec) const {
  return run_spec(alu, streams, spec, /*want_anatomy=*/true);
}

DataPoint TrialEngine::point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec) const {
  assert(spec.percents.size() == 1);
  return run_spec(alu, streams, spec, /*want_anatomy=*/false)
      .points.front();
}

AnatomyPoint TrialEngine::point_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec) const {
  assert(spec.percents.size() == 1);
  SweepAnatomy sweep = run_spec(alu, streams, spec, /*want_anatomy=*/true);
  AnatomyPoint out;
  out.point = std::move(sweep.points.front());
  if (!sweep.metrics.empty()) {
    out.counters = sweep.metrics.front();
  }
  return out;
}

std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed) {
  const Bitmap image = Bitmap::paper_test_image(seed);
  std::vector<std::vector<Instruction>> streams;
  for (const PixelOp& op : paper_workloads()) {
    streams.push_back(make_stream(image, op));
  }
  return streams;
}

}  // namespace nbx
