#include "sim/table_render.hpp"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace nbx {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) {
    total += w + 2;
  }
  os << std::string(total >= 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

}  // namespace nbx
