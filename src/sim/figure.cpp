#include "sim/figure.hpp"

#include "alu/alu_factory.hpp"
#include "sim/table_render.hpp"

namespace nbx {

FigureSpec figure7_spec() {
  return {"fig7",
          "Percent correct instructions vs injected error rate, no "
          "module-level fault tolerance",
          ModuleLevel::kNone,
          {"aluncmos", "alunh", "alunn", "aluns"}};
}

FigureSpec figure8_spec() {
  return {"fig8",
          "Percent correct instructions vs injected error rate, "
          "module-level time redundancy",
          ModuleLevel::kTime,
          {"alutcmos", "aluth", "alutn", "aluts"}};
}

FigureSpec figure9_spec() {
  return {"fig9",
          "Percent correct instructions vs injected error rate, "
          "module-level space redundancy",
          ModuleLevel::kSpace,
          {"aluscmos", "alush", "alusn", "aluss"}};
}

std::vector<FigureSpec> all_figure_specs() {
  return {figure7_spec(), figure8_spec(), figure9_spec()};
}

FigureResult run_figure(const FigureSpec& spec,
                        const std::vector<double>& percents,
                        int trials_per_workload, std::uint64_t seed,
                        const ParallelConfig& par,
                        const std::function<void()>& on_point) {
  FigureResult fig;
  fig.spec = spec;
  fig.percents = percents;
  const auto streams = paper_streams(seed);
  TrialEngine engine(par);
  if (on_point) {
    // The engine chunks the sweep per percent and ticks in between;
    // identical numbers — per-trial seeds hash the percent's value, not
    // its position in the sweep.
    engine.set_on_point(on_point);
  }
  SweepSpec sweep;
  sweep.percents = percents;
  sweep.trials_per_workload = trials_per_workload;
  sweep.seed = seed;
  for (const std::string& name : spec.alus) {
    const auto alu = make_alu(name);
    fig.series.push_back(engine.sweep(*alu, streams, sweep));
  }
  return fig;
}

namespace {
TextTable figure_table(const FigureResult& fig, bool with_stddev) {
  std::vector<std::string> header{"fault%"};
  for (const std::string& a : fig.spec.alus) {
    header.push_back(a);
    if (with_stddev) {
      header.push_back(a + ".sd");
    }
  }
  TextTable t(std::move(header));
  for (std::size_t p = 0; p < fig.percents.size(); ++p) {
    std::vector<std::string> row{fmt_double(fig.percents[p], 2)};
    for (const auto& series : fig.series) {
      row.push_back(fmt_double(series[p].mean_percent_correct, 2));
      if (with_stddev) {
        row.push_back(fmt_double(series[p].stddev, 2));
      }
    }
    t.add_row(std::move(row));
  }
  return t;
}
}  // namespace

void print_figure(std::ostream& os, const FigureResult& fig) {
  os << fig.spec.id << ": " << fig.spec.title << "\n";
  os << "(mean percent of instructions correct; each point averages "
     << (fig.series.empty() ? 0 : fig.series[0][0].samples)
     << " samples)\n";
  figure_table(fig, /*with_stddev=*/false).print(os);
}

void write_figure_csv(std::ostream& os, const FigureResult& fig) {
  figure_table(fig, /*with_stddev=*/true).print_csv(os);
}

std::vector<PaperAnchor> paper_anchors() {
  // Bands are deliberately generous: the paper's exact numbers come from
  // its specific VHDL structures; ours must reproduce the *shape*.
  return {
      // Figure 7 (§5 paragraphs 3-5)
      {"fig7", "aluns", 2.0, 90.0, 100.0,
       ">=98% correct with injected fault rates as high as 2 percent"},
      {"fig7", "aluns", 9.0, 55.0, 100.0,
       ">60% correct computation with injected fault rates as high as 9%"},
      {"fig7", "aluncmos", 1.0, 15.0, 70.0,
       "CMOS ALU dropped to 39 percent correct at only 1 percent injected"},
      {"fig7", "aluncmos", 3.0, 0.0, 30.0,
       "dropped to 9 percent at 3 percent injected errors"},
      {"fig7", "aluncmos", 10.0, 0.0, 8.0,
       "nearly 0 percent correct for all higher densities"},
      {"fig7", "alunh", 3.0, 0.0, 65.0,
       "alunh dropped below 60 percent at injected error rates below 3%"},
      {"fig7", "alunn", 3.0, 0.0, 75.0,
       "alunn dropped below 60 percent at injected error rates below 3%"},
      // Figure 8 mirrors Figure 7 (module redundancy ineffective, §5)
      {"fig8", "aluts", 2.0, 90.0, 100.0,
       "triplicated LUT series similar across Figures 7-9"},
      {"fig8", "alutcmos", 3.0, 0.0, 35.0,
       "CMOS series similar across Figures 7-9"},
      // Figure 9 (§5 headline)
      {"fig9", "aluss", 3.0, 90.0, 100.0,
       "98 percent (or better) correct computation at injected error rates "
       "as high as 3 percent"},
      {"fig9", "aluss", 2.0, 95.0, 100.0,
       "aluss near-perfect at 2 percent"},
      {"fig9", "aluscmos", 3.0, 0.0, 35.0,
       "CMOS with module redundancy still collapses by 3 percent"},
  };
}

bool lookup_measured(const FigureResult& fig, const PaperAnchor& a,
                     double* measured) {
  for (std::size_t s = 0; s < fig.spec.alus.size(); ++s) {
    if (fig.spec.alus[s] != a.alu) {
      continue;
    }
    for (std::size_t p = 0; p < fig.percents.size(); ++p) {
      if (fig.percents[p] == a.fault_percent) {
        *measured = fig.series[s][p].mean_percent_correct;
        return true;
      }
    }
  }
  return false;
}

}  // namespace nbx
