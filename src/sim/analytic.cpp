#include "sim/analytic.hpp"

#include <cmath>

#include "common/bitvec.hpp"

namespace nbx {

namespace {

// log(n!) via lgamma.
double log_factorial(std::size_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

// log C(n, r); -inf when r > n.
double log_choose(std::size_t n, std::size_t r) {
  if (r > n) {
    return -std::numeric_limits<double>::infinity();
  }
  return log_factorial(n) - log_factorial(r) - log_factorial(n - r);
}

}  // namespace

double hypergeometric_pmf(std::size_t N, std::size_t K, std::size_t k,
                          std::size_t j) {
  if (j > K || j > k || k > N || (k - j) > (N - K)) {
    return 0.0;
  }
  const double lp = log_choose(K, j) + log_choose(N - K, k - j) -
                    log_choose(N, k);
  return std::exp(lp);
}

double probability_no_hit(std::size_t N, std::size_t K, std::size_t k) {
  return hypergeometric_pmf(N, K, k, 0);
}

std::size_t count_observable_sites(const IAlu& alu, const Instruction& ins) {
  const std::size_t n = alu.fault_sites();
  BitVec mask(n);
  std::size_t observable = 0;
  for (std::size_t site = 0; site < n; ++site) {
    mask.set(site, true);
    const AluOutput out =
        alu.compute(ins.op, ins.a, ins.b, MaskView(mask, 0, n));
    if (out.value != ins.golden) {
      ++observable;
    }
    mask.set(site, false);
  }
  return observable;
}

double predict_first_order(const IAlu& alu,
                           const std::vector<Instruction>& stream,
                           double fault_percent) {
  if (stream.empty()) {
    return 100.0;
  }
  const std::size_t n = alu.fault_sites();
  const auto k = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * fault_percent / 100.0));
  double acc = 0.0;
  for (const Instruction& ins : stream) {
    const std::size_t observable = count_observable_sites(alu, ins);
    acc += probability_no_hit(n, observable, k);
  }
  return 100.0 * acc / static_cast<double>(stream.size());
}

double predict_tmr_pairs(std::size_t sites, std::size_t entries,
                         double fault_percent) {
  const auto k = static_cast<std::size_t>(
      std::llround(static_cast<double>(sites) * fault_percent / 100.0));
  // One addressed entry = 3 marked sites. P(entry survives) = P(0 or 1
  // of its copies hit); entries treated as independent.
  const double survive = hypergeometric_pmf(sites, 3, k, 0) +
                         hypergeometric_pmf(sites, 3, k, 1);
  return 100.0 * std::pow(survive, static_cast<double>(entries));
}

std::size_t critical_tmr_entries(Opcode op) {
  return op == Opcode::kAdd ? 23 : 16;
}

double predict_tmr_stream(std::size_t sites,
                          const std::vector<Instruction>& stream,
                          double fault_percent) {
  if (stream.empty()) {
    return 100.0;
  }
  double acc = 0.0;
  for (const Instruction& ins : stream) {
    acc += predict_tmr_pairs(sites, critical_tmr_entries(ins.op),
                             fault_percent);
  }
  return acc / static_cast<double>(stream.size());
}

std::vector<AnalyticPoint> first_order_curve(
    const IAlu& alu, const std::vector<Instruction>& stream,
    const std::vector<double>& percents) {
  std::vector<AnalyticPoint> out;
  out.reserve(percents.size());
  for (const double pct : percents) {
    out.push_back({pct, predict_first_order(alu, stream, pct)});
  }
  return out;
}

std::vector<AnalyticPoint> tmr_pair_curve(
    std::size_t sites, std::size_t entries,
    const std::vector<double>& percents) {
  std::vector<AnalyticPoint> out;
  out.reserve(percents.size());
  for (const double pct : percents) {
    out.push_back({pct, predict_tmr_pairs(sites, entries, pct)});
  }
  return out;
}

}  // namespace nbx
