// experiment.hpp — the paper's fault-injection experiment harness (§4-§5).
//
// One *trial* runs a 64-instruction workload through an ALU, generating a
// fresh uniformly random fault mask before every computation, and scores
// the percentage of instructions whose result matches the golden value.
// One *data point* (a marker in Figures 7-9) averages five trials of each
// of the two workloads (ten samples). A *sweep* evaluates an ALU at the
// paper's eighteen fault percentages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alu/alu_iface.hpp"
#include "common/stats.hpp"
#include "fault/mask_generator.hpp"
#include "obs/counters.hpp"
#include "obs/profiler.hpp"
#include "workload/instruction_stream.hpp"

namespace nbx {

/// What portion of an ALU's site space receives injected faults.
/// kDatapathOnly is an ablation (not in the paper): the module voter and
/// any storage bits are kept fault-free to isolate their contribution.
enum class InjectionScope : std::uint8_t { kAll, kDatapathOnly };

/// Parameters of a single-ALU experiment trial set.
struct TrialConfig {
  double fault_percent = 0.0;
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
  std::size_t burst_length = 1;  ///< used by FaultCountPolicy::kBurst
  InjectionScope scope = InjectionScope::kAll;
  /// Sites eligible for injection when scope == kDatapathOnly (leading
  /// segment of the mask). Ignored for kAll.
  std::size_t datapath_sites = 0;
};

/// Result of one trial (one workload, one pass over its instructions).
struct TrialResult {
  double percent_correct = 0.0;
  std::size_t instructions = 0;
  std::size_t incorrect = 0;
  ModuleStats stats;
};

/// Runs one workload through `alu` once, a fresh fault mask per
/// instruction, and scores correctness against the precomputed goldens.
/// With `anatomy` non-null, the trial additionally tallies the full
/// fault anatomy (injection volume, per-code decode outcomes, module
/// votes, end-to-end silent/caught classification) into it. Accounting
/// is passive — it draws nothing from `rng` and never changes the
/// simulated outcome, so attaching a sink cannot move any golden.
TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng,
                      obs::Counters* anatomy = nullptr);

/// How run_data_point / run_sweep fan trials out across worker threads.
/// Per-trial RNG seeds are derived counter-style from (seed, ALU-name
/// hash, fault percent, workload index, trial index) — see
/// MaskGenerator::trial_seed — and samples are folded into statistics in
/// a fixed order, so results are bit-identical for every `threads`
/// value and every scheduling.
struct ParallelConfig {
  unsigned threads = 1;   ///< total worker threads; 1 = serial, 0 = all
                          ///< hardware threads
  std::size_t chunking = 0;  ///< trials per work unit; 0 = auto
  /// Trials packed per bit-parallel batch (see alu/batch_alu.hpp):
  /// 0 = scalar engine (default); 1..64 = batched engine with that many
  /// lanes per group. Any value yields bit-identical results — lanes
  /// reuse the scalar per-trial seeds verbatim — so this is purely a
  /// throughput knob. Composes with `threads`: the work unit becomes a
  /// lane group instead of a single trial.
  unsigned batch_lanes = 0;
  /// Optional stage profiler (not owned): when set, the engine times
  /// each work item under the "trial" (scalar) or "lane_group"
  /// (batched) stage and the statistics fold under "fold". Wall-clock
  /// only; never affects results.
  obs::Profiler* profiler = nullptr;
};

/// One plotted point: an ALU at one fault percentage, averaged over
/// `trials_per_workload` trials of each workload.
struct DataPoint {
  std::string alu;
  double fault_percent = 0.0;
  double mean_percent_correct = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width on the mean (Student's t)
  std::size_t samples = 0;
};

/// Computes one data point the paper's way: for each workload, run
/// `trials_per_workload` independently seeded trials; average all samples.
DataPoint run_data_point(const IAlu& alu,
                         const std::vector<std::vector<Instruction>>& streams,
                         double fault_percent, int trials_per_workload,
                         std::uint64_t seed,
                         FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
                         InjectionScope scope = InjectionScope::kAll,
                         std::size_t datapath_sites = 0,
                         std::size_t burst_length = 1,
                         const ParallelConfig& par = {});

/// run_data_point via the bit-parallel batched engine: identical
/// signature and bit-identical output, with trials packed 64 (or
/// par.batch_lanes, if nonzero) to a lane group. Provided as an explicit
/// entry point for benches and differential tests; run_data_point itself
/// also takes the batched path whenever par.batch_lanes >= 1.
DataPoint run_data_point_batched(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0, std::size_t burst_length = 1,
    const ParallelConfig& par = {});

/// A full sweep of one ALU across fault percentages. With par.threads
/// != 1 every (percent, workload, trial) cell of the sweep runs
/// concurrently; the output is bit-identical to the serial path.
std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0,
    const ParallelConfig& par = {});

/// A sweep plus its fault anatomy: metrics[i] aggregates the counters
/// of every trial behind points[i] (same index, same fault percent).
struct SweepAnatomy {
  std::vector<DataPoint> points;
  std::vector<obs::Counters> metrics;
};

/// run_sweep with the anatomy sink attached to every trial. The points
/// are bit-identical to run_sweep's (accounting is passive), and the
/// counters themselves are bit-identical across threads and batch_lanes:
/// they are pure integer sums over a fixed trial population, merged in
/// deterministic per-percent order.
SweepAnatomy run_sweep_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0,
    const ParallelConfig& par = {});

/// One data point plus its aggregated fault anatomy.
struct AnatomyPoint {
  DataPoint point;
  obs::Counters counters;
};

/// run_data_point with the anatomy sink attached (same determinism
/// contract as run_sweep_anatomy).
AnatomyPoint run_data_point_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0, std::size_t burst_length = 1,
    const ParallelConfig& par = {});

/// The paper's two workload streams over the standard 64-pixel image.
std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed = 42);

// ---------------------------------------------------------------------
// Manufacturing-defect experiments (extension; the paper motivates
// defects in its abstract but evaluates only transients).
// ---------------------------------------------------------------------

/// Parameters of a defect experiment: a part is manufactured with the
/// given stuck-at density over the ALU's defectable storage, then runs a
/// workload under the usual per-computation transient faults.
struct DefectConfig {
  double defect_density = 0.0;     ///< per-cell stuck-at probability
  double transient_percent = 0.0;  ///< the §4 transient sweep knob
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
};

/// Runs one workload on one freshly manufactured part. The DefectMap is
/// drawn from `rng` and fixed for the whole trial; transient masks are
/// regenerated per computation and the defects imposed on top (stuck
/// cells dominate transient hits).
TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng);

/// One data point: `chips_per_workload` independently manufactured parts
/// per workload, averaged (mirrors the paper's 5-trials structure, with
/// "trial" = "chip").
DataPoint run_defect_point(const IAlu& alu,
                           const std::vector<std::vector<Instruction>>& streams,
                           const DefectConfig& cfg, int chips_per_workload,
                           std::uint64_t seed);

}  // namespace nbx
