// experiment.hpp — the paper's fault-injection experiment harness (§4-§5).
//
// One *trial* runs a 64-instruction workload through an ALU, generating a
// fresh uniformly random fault mask before every computation, and scores
// the percentage of instructions whose result matches the golden value.
// One *data point* (a marker in Figures 7-9) averages five trials of each
// of the two workloads (ten samples). A *sweep* evaluates an ALU at the
// paper's eighteen fault percentages.
//
// The execution core lives in sim/trial_engine.hpp (TrialEngine): build
// an engine and a SweepSpec directly —
//
//   TrialEngine engine(par);
//   auto points = engine.sweep(alu, streams,
//                              {.percents = percents,
//                               .trials_per_workload = trials,
//                               .seed = seed});
//
// which gives sweeps and points the full composition (threads x lanes x
// anatomy x profiler x progress) without a per-variant entry point.
// (The historical run_data_point*/run_sweep* forwarding shims are gone;
// this header now holds only the manufacturing-defect experiments.)
#pragma once

#include "sim/trial_engine.hpp"

namespace nbx {

// ---------------------------------------------------------------------
// Manufacturing-defect experiments (extension; the paper motivates
// defects in its abstract but evaluates only transients).
// ---------------------------------------------------------------------

/// Parameters of a defect experiment: a part is manufactured with the
/// given stuck-at density over the ALU's defectable storage, then runs a
/// workload under the usual per-computation transient faults.
struct DefectConfig {
  double defect_density = 0.0;     ///< per-cell stuck-at probability
  double transient_percent = 0.0;  ///< the §4 transient sweep knob
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
};

/// Runs one workload on one freshly manufactured part. The DefectMap is
/// drawn from `rng` and fixed for the whole trial; transient masks are
/// regenerated per computation and the defects imposed on top (stuck
/// cells dominate transient hits).
TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng);

/// One data point: `chips_per_workload` independently manufactured parts
/// per workload, averaged (mirrors the paper's 5-trials structure, with
/// "trial" = "chip").
DataPoint run_defect_point(const IAlu& alu,
                           const std::vector<std::vector<Instruction>>& streams,
                           const DefectConfig& cfg, int chips_per_workload,
                           std::uint64_t seed);

}  // namespace nbx
