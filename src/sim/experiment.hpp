// experiment.hpp — the paper's fault-injection experiment harness (§4-§5).
//
// One *trial* runs a 64-instruction workload through an ALU, generating a
// fresh uniformly random fault mask before every computation, and scores
// the percentage of instructions whose result matches the golden value.
// One *data point* (a marker in Figures 7-9) averages five trials of each
// of the two workloads (ten samples). A *sweep* evaluates an ALU at the
// paper's eighteen fault percentages.
//
// The execution core lives in sim/trial_engine.hpp (TrialEngine); the
// run_data_point*/run_sweep* free functions below are source-compat
// shims that forward to an engine built from their arguments. They are
// deprecated: new call sites should construct a TrialEngine (and a
// SweepSpec) directly —
//
//   TrialEngine engine(par);
//   auto points = engine.sweep(alu, streams,
//                              {.percents = percents,
//                               .trials_per_workload = trials,
//                               .seed = seed});
//
// which gives sweeps and points the full composition (threads x lanes x
// anatomy x profiler x progress) without a per-variant entry point.
// Defining NBX_ALLOW_ENGINE_SHIMS before including this header (done by
// the shim TU and the differential tests) suppresses the deprecation.
#pragma once

#include "sim/trial_engine.hpp"

#if defined(NBX_ALLOW_ENGINE_SHIMS)
#define NBX_ENGINE_SHIM
#else
#define NBX_ENGINE_SHIM                                                     \
  [[deprecated("forwarding shim: use nbx::TrialEngine "                     \
               "(sim/trial_engine.hpp) instead")]]
#endif

namespace nbx {

/// Computes one data point the paper's way: for each workload, run
/// `trials_per_workload` independently seeded trials; average all samples.
NBX_ENGINE_SHIM DataPoint run_data_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0, std::size_t burst_length = 1,
    const ParallelConfig& par = {});

/// run_data_point via the bit-parallel batched engine: identical
/// signature and bit-identical output, with trials packed 64 (or
/// par.batch_lanes, if nonzero) to a lane group. run_data_point itself
/// also takes the batched path whenever par.batch_lanes >= 1.
NBX_ENGINE_SHIM DataPoint run_data_point_batched(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0, std::size_t burst_length = 1,
    const ParallelConfig& par = {});

/// A full sweep of one ALU across fault percentages. With par.threads
/// != 1 every (percent, workload, trial) cell of the sweep runs
/// concurrently; the output is bit-identical to the serial path.
NBX_ENGINE_SHIM std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0,
    const ParallelConfig& par = {});

/// run_sweep with the anatomy sink attached to every trial. The points
/// are bit-identical to run_sweep's (accounting is passive), and the
/// counters themselves are bit-identical across threads and batch_lanes:
/// they are pure integer sums over a fixed trial population, merged in
/// deterministic per-percent order.
NBX_ENGINE_SHIM SweepAnatomy run_sweep_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0,
    const ParallelConfig& par = {});

/// run_data_point with the anatomy sink attached (same determinism
/// contract as run_sweep_anatomy).
NBX_ENGINE_SHIM AnatomyPoint run_data_point_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy = FaultCountPolicy::kRoundNearest,
    InjectionScope scope = InjectionScope::kAll,
    std::size_t datapath_sites = 0, std::size_t burst_length = 1,
    const ParallelConfig& par = {});

// ---------------------------------------------------------------------
// Manufacturing-defect experiments (extension; the paper motivates
// defects in its abstract but evaluates only transients).
// ---------------------------------------------------------------------

/// Parameters of a defect experiment: a part is manufactured with the
/// given stuck-at density over the ALU's defectable storage, then runs a
/// workload under the usual per-computation transient faults.
struct DefectConfig {
  double defect_density = 0.0;     ///< per-cell stuck-at probability
  double transient_percent = 0.0;  ///< the §4 transient sweep knob
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
};

/// Runs one workload on one freshly manufactured part. The DefectMap is
/// drawn from `rng` and fixed for the whole trial; transient masks are
/// regenerated per computation and the defects imposed on top (stuck
/// cells dominate transient hits).
TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng);

/// One data point: `chips_per_workload` independently manufactured parts
/// per workload, averaged (mirrors the paper's 5-trials structure, with
/// "trial" = "chip").
DataPoint run_defect_point(const IAlu& alu,
                           const std::vector<std::vector<Instruction>>& streams,
                           const DefectConfig& cfg, int chips_per_workload,
                           std::uint64_t seed);

}  // namespace nbx

#undef NBX_ENGINE_SHIM
