#include "sim/experiment.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "alu/batch_alu.hpp"
#include "common/batch_bitvec.hpp"
#include "common/thread_pool.hpp"
#include "fault/defect_map.hpp"
#include "workload/image_ops.hpp"

namespace nbx {

TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng,
                      obs::Counters* anatomy) {
  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites = cfg.scope == InjectionScope::kDatapathOnly
                                       ? cfg.datapath_sites
                                       : total_sites;
  assert(inject_sites <= total_sites);
  // The fault *fraction* applies to the eligible sites; for the paper's
  // kAll scope this is exactly "a given fraction of the fault injection
  // points" (§4).
  const MaskGenerator gen(inject_sites, cfg.fault_percent, cfg.policy,
                          cfg.burst_length);

  BitVec mask(total_sites);
  BitVec scratch(inject_sites);
  TrialResult res;
  res.instructions = stream.size();
  if (anatomy != nullptr) {
    // One sink serves both levels: the module wrapper / voter hooks and
    // the coded-LUT decode hooks beneath them.
    res.stats.obs = anatomy;
    res.stats.lut.obs = anatomy;
  }
  for (const Instruction& ins : stream) {
    // "After each ALU computation, we generate a new fault mask" (§4).
    if (inject_sites == total_sites) {
      gen.generate(rng, mask);
    } else {
      gen.generate(rng, scratch);
      mask.clear_all();
      for (std::size_t i = 0; i < inject_sites; ++i) {
        if (scratch.get(i)) {
          mask.set(i, true);
        }
      }
    }
    if (anatomy != nullptr) {
      ++anatomy->injection.masks_generated;
      // Floyd's sampling sets exactly faults_per_computation() bits for
      // the counting policies; only Bernoulli (per-site coin flips) and
      // burst (edge truncation, overlapping strikes) need the real
      // popcount. Skipping it keeps the sink's hot-loop cost flat.
      anatomy->injection.faults_injected +=
          (cfg.policy == FaultCountPolicy::kRoundNearest ||
           cfg.policy == FaultCountPolicy::kFloor)
              ? gen.faults_per_computation()
              : mask.popcount();
    }
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, total_sites),
                                      &res.stats);
    const bool wrong = out.value != ins.golden;
    if (wrong) {
      ++res.incorrect;
    }
    if (anatomy != nullptr) {
      auto& e = anatomy->end_to_end;
      ++e.instructions;
      const bool flagged = out.disagreement || !out.valid;
      if (wrong) {
        ++(flagged ? e.caught_errors : e.silent_corruptions);
      } else {
        ++(flagged ? e.false_alarms : e.correct);
      }
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

namespace {

// Runs the (percent x workload x trial) grid and returns one
// percent_correct sample per cell, indexed [percent][workload][trial]
// flattened. Every cell is an independent work item whose RNG seed is a
// pure function of its coordinates (MaskGenerator::trial_seed), so the
// sample vector is bit-identical for any thread count or schedule.
std::vector<double> run_trial_grid(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par, std::vector<obs::Counters>* anatomy) {
  const std::size_t workloads = streams.size();
  const auto trials = static_cast<std::size_t>(trials_per_workload);
  const std::size_t per_percent = workloads * trials;
  const std::size_t total = percents.size() * per_percent;
  const std::uint64_t alu_hash = fnv1a64(alu.name());
  const std::size_t st_trial =
      par.profiler != nullptr ? par.profiler->stage_index("trial") : 0;

  // Each cell tallies into its own slot; the per-percent merge below
  // runs after the pool joins, in index order. (Order is cosmetic —
  // integer sums commute — which is exactly why the totals are bit-
  // identical for every schedule.)
  std::vector<obs::Counters> per_item;
  if (anatomy != nullptr) {
    per_item.resize(total);
  }

  std::vector<double> samples(total, 0.0);
  const auto run_cell = [&](std::size_t i) {
    const obs::ScopedTimer timer(par.profiler, st_trial);
    const std::size_t pi = i / per_percent;
    const std::size_t w = (i % per_percent) / trials;
    const std::size_t t = i % trials;
    TrialConfig cfg;
    cfg.fault_percent = percents[pi];
    cfg.policy = policy;
    cfg.burst_length = burst_length;
    cfg.scope = scope;
    cfg.datapath_sites = datapath_sites;
    Rng rng(MaskGenerator::trial_seed(seed, alu_hash, percents[pi], w, t));
    samples[i] = run_trial(alu, streams[w], cfg, rng,
                           anatomy != nullptr ? &per_item[i] : nullptr)
                     .percent_correct;
  };

  if (resolve_threads(par.threads) <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(par.threads);
    pool.parallel_for(total, par.chunking, run_cell);
  }
  if (anatomy != nullptr) {
    anatomy->assign(percents.size(), obs::Counters{});
    for (std::size_t i = 0; i < total; ++i) {
      (*anatomy)[i / per_percent] += per_item[i];
    }
  }
  return samples;
}

// The bit-parallel variant of run_trial_grid: same sample vector, same
// flat [percent][workload][trial] order, bit-identical values. A work
// item is a *lane group* — up to par.batch_lanes trials of one (percent,
// workload) cell packed into the lanes of one BatchBitVec. Every lane
// keeps its own Rng seeded with the exact scalar trial seed and the
// shared mask-generation core consumes it draw-for-draw like the scalar
// path, so each lane regenerates its trial's mask stream verbatim; the
// batched ALU then computes all lanes at once.
std::vector<double> run_batched_grid(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par, std::vector<obs::Counters>* anatomy) {
  const std::size_t workloads = streams.size();
  const auto trials = static_cast<std::size_t>(trials_per_workload);
  const unsigned lanes =
      std::min(std::max(par.batch_lanes, 1u), kMaxBatchLanes);
  const std::size_t groups_per_cell = trials == 0 ? 0 : (trials + lanes - 1) / lanes;
  const std::size_t cells = percents.size() * workloads;
  const std::size_t total_groups = cells * groups_per_cell;
  const std::uint64_t alu_hash = fnv1a64(alu.name());

  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites =
      scope == InjectionScope::kDatapathOnly ? datapath_sites : total_sites;
  assert(inject_sites <= total_sites);

  // One read-only batched mirror shared by all worker threads
  // (BatchAlu::compute keeps its scratch on the stack).
  const std::unique_ptr<BatchAlu> batch = BatchAlu::create(alu);
  const std::size_t st_group =
      par.profiler != nullptr ? par.profiler->stage_index("lane_group") : 0;

  std::vector<obs::Counters> per_group;
  if (anatomy != nullptr) {
    per_group.resize(total_groups);
  }

  std::vector<double> samples(percents.size() * workloads * trials, 0.0);
  const auto run_group = [&](std::size_t item) {
    const obs::ScopedTimer timer(par.profiler, st_group);
    const std::size_t cell = item / groups_per_cell;
    const std::size_t group = item % groups_per_cell;
    const std::size_t pi = cell / workloads;
    const std::size_t w = cell % workloads;
    const std::size_t first_trial = group * lanes;
    const auto in_group = static_cast<unsigned>(
        std::min<std::size_t>(lanes, trials - first_trial));
    const std::uint64_t active = lane_mask_for(in_group);
    const std::vector<Instruction>& stream = streams[w];

    const MaskGenerator gen(inject_sites, percents[pi], policy,
                            burst_length);
    std::vector<Rng> rngs;
    rngs.reserve(in_group);
    for (unsigned l = 0; l < in_group; ++l) {
      rngs.emplace_back(MaskGenerator::trial_seed(
          seed, alu_hash, percents[pi], w, first_trial + l));
    }

    obs::Counters* oc = anatomy != nullptr ? &per_group[item] : nullptr;
    BatchBitVec mask(total_sites);
    BatchAluOutput out;
    ModuleStats stats;
    if (oc != nullptr) {
      stats.obs = oc;
      stats.lut.obs = oc;
    }
    std::uint32_t incorrect[kMaxBatchLanes] = {};
    for (const Instruction& ins : stream) {
      mask.clear_all();
      for (unsigned l = 0; l < in_group; ++l) {
        gen.generate(rngs[l], mask, l);
      }
      if (oc != nullptr) {
        oc->injection.masks_generated += in_group;
        std::uint64_t flipped = 0;
        for (std::size_t s = 0; s < inject_sites; ++s) {
          flipped += static_cast<std::uint64_t>(
              std::popcount(mask.word(s) & active));
        }
        oc->injection.faults_injected += flipped;
      }
      batch->compute(ins.op, ins.a, ins.b, &mask, active, out, &stats);
      std::uint64_t wrong = 0;
      for (unsigned bit = 0; bit < 8; ++bit) {
        wrong |= out.value[bit] ^ lane_broadcast((ins.golden >> bit) & 1u);
      }
      for (std::uint64_t rest = wrong & active; rest != 0;
           rest &= rest - 1) {
        ++incorrect[std::countr_zero(rest)];
      }
      if (oc != nullptr) {
        // Lane-sliced version of run_trial's end-to-end classification.
        auto& e = oc->end_to_end;
        const std::uint64_t flagged = out.disagreement | ~out.valid;
        e.instructions += in_group;
        e.caught_errors += static_cast<std::uint64_t>(
            std::popcount(wrong & flagged & active));
        e.silent_corruptions += static_cast<std::uint64_t>(
            std::popcount(wrong & ~flagged & active));
        e.false_alarms += static_cast<std::uint64_t>(
            std::popcount(~wrong & flagged & active));
        e.correct += static_cast<std::uint64_t>(
            std::popcount(~wrong & ~flagged & active));
      }
    }
    const std::size_t base = cell * trials + first_trial;
    for (unsigned l = 0; l < in_group; ++l) {
      // Same arithmetic as run_trial's percent_correct, so the doubles
      // match bit for bit.
      samples[base + l] =
          stream.empty()
              ? 100.0
              : 100.0 *
                    static_cast<double>(stream.size() - incorrect[l]) /
                    static_cast<double>(stream.size());
    }
  };

  if (resolve_threads(par.threads) <= 1 || total_groups <= 1) {
    for (std::size_t i = 0; i < total_groups; ++i) {
      run_group(i);
    }
  } else {
    ThreadPool pool(par.threads);
    pool.parallel_for(total_groups, par.chunking, run_group);
  }
  if (anatomy != nullptr) {
    anatomy->assign(percents.size(), obs::Counters{});
    const std::size_t groups_per_percent = workloads * groups_per_cell;
    for (std::size_t i = 0; i < total_groups; ++i) {
      (*anatomy)[i / groups_per_percent] += per_group[i];
    }
  }
  return samples;
}

// Folds one percent's samples into a DataPoint in fixed (workload-major)
// order, keeping the floating-point accumulation identical to the serial
// path regardless of which threads produced the samples.
DataPoint fold_point(const IAlu& alu, double fault_percent,
                     const double* samples, std::size_t count) {
  RunningStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(samples[i]);
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = fault_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

// Engine dispatch: batch_lanes >= 1 selects the bit-parallel grid.
std::vector<double> run_grid(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par,
    std::vector<obs::Counters>* anatomy = nullptr) {
  if (par.batch_lanes >= 1) {
    return run_batched_grid(alu, streams, percents, trials_per_workload,
                            seed, policy, scope, datapath_sites,
                            burst_length, par, anatomy);
  }
  return run_trial_grid(alu, streams, percents, trials_per_workload, seed,
                        policy, scope, datapath_sites, burst_length, par,
                        anatomy);
}

}  // namespace

DataPoint run_data_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  const std::vector<double> samples =
      run_grid(alu, streams, {fault_percent}, trials_per_workload, seed,
               policy, scope, datapath_sites, burst_length, par);
  return fold_point(alu, fault_percent, samples.data(), samples.size());
}

DataPoint run_data_point_batched(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  ParallelConfig batched = par;
  if (batched.batch_lanes == 0) {
    batched.batch_lanes = kMaxBatchLanes;
  }
  return run_data_point(alu, streams, fault_percent, trials_per_workload,
                        seed, policy, scope, datapath_sites, burst_length,
                        batched);
}

std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, const ParallelConfig& par) {
  // One flat grid over every (percent, workload, trial) cell: a sweep
  // parallelizes across its whole trial population, not point by point.
  const std::vector<double> samples =
      run_grid(alu, streams, percents, trials_per_workload, seed, policy,
               scope, datapath_sites, /*burst_length=*/1, par);
  const std::size_t st_fold =
      par.profiler != nullptr ? par.profiler->stage_index("fold") : 0;
  const obs::ScopedTimer timer(par.profiler, st_fold);
  const std::size_t per_percent =
      streams.size() * static_cast<std::size_t>(trials_per_workload);
  std::vector<DataPoint> points;
  points.reserve(percents.size());
  for (std::size_t pi = 0; pi < percents.size(); ++pi) {
    points.push_back(fold_point(alu, percents[pi],
                                samples.data() + pi * per_percent,
                                per_percent));
  }
  return points;
}

SweepAnatomy run_sweep_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, const ParallelConfig& par) {
  SweepAnatomy result;
  const std::vector<double> samples =
      run_grid(alu, streams, percents, trials_per_workload, seed, policy,
               scope, datapath_sites, /*burst_length=*/1, par,
               &result.metrics);
  const std::size_t st_fold =
      par.profiler != nullptr ? par.profiler->stage_index("fold") : 0;
  const obs::ScopedTimer timer(par.profiler, st_fold);
  const std::size_t per_percent =
      streams.size() * static_cast<std::size_t>(trials_per_workload);
  result.points.reserve(percents.size());
  for (std::size_t pi = 0; pi < percents.size(); ++pi) {
    result.points.push_back(fold_point(alu, percents[pi],
                                       samples.data() + pi * per_percent,
                                       per_percent));
  }
  return result;
}

AnatomyPoint run_data_point_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  std::vector<obs::Counters> metrics;
  const std::vector<double> samples =
      run_grid(alu, streams, {fault_percent}, trials_per_workload, seed,
               policy, scope, datapath_sites, burst_length, par, &metrics);
  AnatomyPoint out;
  out.point = fold_point(alu, fault_percent, samples.data(), samples.size());
  if (!metrics.empty()) {
    out.counters = metrics.front();
  }
  return out;
}

TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng) {
  const DefectMap chip = DefectMap::manufacture(alu.defectable_sites(),
                                                cfg.defect_density, rng);
  const MaskGenerator gen(alu.fault_sites(), cfg.transient_percent,
                          cfg.policy);
  BitVec mask(alu.fault_sites());
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    gen.generate(rng, mask);
    alu.impose_defects(chip, mask);
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, mask.size()),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_defect_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const DefectConfig& cfg, int chips_per_workload, std::uint64_t seed) {
  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int chip = 0; chip < chips_per_workload; ++chip) {
      Rng rng = master.split(
          (w << 24) ^ static_cast<std::uint64_t>(chip) ^
          (static_cast<std::uint64_t>(cfg.defect_density * 1e6) << 28) ^
          (static_cast<std::uint64_t>(cfg.transient_percent * 100.0) << 44));
      stats.add(run_defect_trial(alu, streams[w], cfg, rng).percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = cfg.transient_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed) {
  const Bitmap image = Bitmap::paper_test_image(seed);
  std::vector<std::vector<Instruction>> streams;
  for (const PixelOp& op : paper_workloads()) {
    streams.push_back(make_stream(image, op));
  }
  return streams;
}

}  // namespace nbx
