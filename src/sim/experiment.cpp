// Manufacturing-defect experiments (sim/experiment.hpp).
#include "sim/experiment.hpp"

#include "fault/defect_map.hpp"

namespace nbx {

TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng) {
  const DefectMap chip = DefectMap::manufacture(alu.defectable_sites(),
                                                cfg.defect_density, rng);
  const MaskGenerator gen(alu.fault_sites(), cfg.transient_percent,
                          cfg.policy);
  BitVec mask(alu.fault_sites());
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    gen.generate(rng, mask);
    alu.impose_defects(chip, mask);
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, mask.size()),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_defect_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const DefectConfig& cfg, int chips_per_workload, std::uint64_t seed) {
  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int chip = 0; chip < chips_per_workload; ++chip) {
      Rng rng = master.split(
          (w << 24) ^ static_cast<std::uint64_t>(chip) ^
          (static_cast<std::uint64_t>(cfg.defect_density * 1e6) << 28) ^
          (static_cast<std::uint64_t>(cfg.transient_percent * 100.0) << 44));
      stats.add(run_defect_trial(alu, streams[w], cfg, rng).percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = cfg.transient_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

}  // namespace nbx
