#include "sim/experiment.hpp"

#include <cassert>

#include "fault/defect_map.hpp"
#include "workload/image_ops.hpp"

namespace nbx {

TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng) {
  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites = cfg.scope == InjectionScope::kDatapathOnly
                                       ? cfg.datapath_sites
                                       : total_sites;
  assert(inject_sites <= total_sites);
  // The fault *fraction* applies to the eligible sites; for the paper's
  // kAll scope this is exactly "a given fraction of the fault injection
  // points" (§4).
  const MaskGenerator gen(inject_sites, cfg.fault_percent, cfg.policy,
                          cfg.burst_length);

  BitVec mask(total_sites);
  BitVec scratch(inject_sites);
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    // "After each ALU computation, we generate a new fault mask" (§4).
    if (inject_sites == total_sites) {
      gen.generate(rng, mask);
    } else {
      gen.generate(rng, scratch);
      mask.clear_all();
      for (std::size_t i = 0; i < inject_sites; ++i) {
        if (scratch.get(i)) {
          mask.set(i, true);
        }
      }
    }
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, total_sites),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_data_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length) {
  TrialConfig cfg;
  cfg.fault_percent = fault_percent;
  cfg.policy = policy;
  cfg.burst_length = burst_length;
  cfg.scope = scope;
  cfg.datapath_sites = datapath_sites;

  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int t = 0; t < trials_per_workload; ++t) {
      // Each (workload, trial) pair gets a decorrelated stream; including
      // the fault percent in the split keeps points independent too.
      Rng rng = master.split((w << 20) ^ static_cast<std::uint64_t>(t) ^
                             (static_cast<std::uint64_t>(fault_percent * 100.0)
                              << 32));
      const TrialResult r = run_trial(alu, streams[w], cfg, rng);
      stats.add(r.percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = fault_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites) {
  std::vector<DataPoint> points;
  points.reserve(percents.size());
  for (const double pct : percents) {
    points.push_back(run_data_point(alu, streams, pct, trials_per_workload,
                                    seed, policy, scope, datapath_sites));
  }
  return points;
}

TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng) {
  const DefectMap chip = DefectMap::manufacture(alu.defectable_sites(),
                                                cfg.defect_density, rng);
  const MaskGenerator gen(alu.fault_sites(), cfg.transient_percent,
                          cfg.policy);
  BitVec mask(alu.fault_sites());
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    gen.generate(rng, mask);
    alu.impose_defects(chip, mask);
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, mask.size()),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_defect_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const DefectConfig& cfg, int chips_per_workload, std::uint64_t seed) {
  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int chip = 0; chip < chips_per_workload; ++chip) {
      Rng rng = master.split(
          (w << 24) ^ static_cast<std::uint64_t>(chip) ^
          (static_cast<std::uint64_t>(cfg.defect_density * 1e6) << 28) ^
          (static_cast<std::uint64_t>(cfg.transient_percent * 100.0) << 44));
      stats.add(run_defect_trial(alu, streams[w], cfg, rng).percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = cfg.transient_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed) {
  const Bitmap image = Bitmap::paper_test_image(seed);
  std::vector<std::vector<Instruction>> streams;
  for (const PixelOp& op : paper_workloads()) {
    streams.push_back(make_stream(image, op));
  }
  return streams;
}

}  // namespace nbx
