// The TU that owns the deprecated run_* shims: each forwards to a
// TrialEngine built from its arguments. Kept for source compatibility;
// see sim/trial_engine.hpp for the engine itself.
#define NBX_ALLOW_ENGINE_SHIMS
#include "sim/experiment.hpp"

#include "common/batch_bitvec.hpp"
#include "fault/defect_map.hpp"

namespace nbx {

namespace {

SweepSpec make_spec(std::vector<double> percents, int trials_per_workload,
                    std::uint64_t seed, FaultCountPolicy policy,
                    InjectionScope scope, std::size_t datapath_sites,
                    std::size_t burst_length) {
  SweepSpec spec;
  spec.percents = std::move(percents);
  spec.trials_per_workload = trials_per_workload;
  spec.seed = seed;
  spec.policy = policy;
  spec.scope = scope;
  spec.datapath_sites = datapath_sites;
  spec.burst_length = burst_length;
  return spec;
}

}  // namespace

DataPoint run_data_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  return TrialEngine(par).point(
      alu, streams,
      make_spec({fault_percent}, trials_per_workload, seed, policy, scope,
                datapath_sites, burst_length));
}

DataPoint run_data_point_batched(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  ParallelConfig batched = par;
  if (batched.batch_lanes == 0) {
    // The historical full-batch default: one 64-lane word per group
    // (kMaxBatchLanes now means 512; the shim keeps its old behavior).
    batched.batch_lanes = kLanesPerWord;
  }
  return TrialEngine(batched).point(
      alu, streams,
      make_spec({fault_percent}, trials_per_workload, seed, policy, scope,
                datapath_sites, burst_length));
}

std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, const ParallelConfig& par) {
  return TrialEngine(par).sweep(
      alu, streams,
      make_spec(percents, trials_per_workload, seed, policy, scope,
                datapath_sites, /*burst_length=*/1));
}

SweepAnatomy run_sweep_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, const ParallelConfig& par) {
  return TrialEngine(par).sweep_anatomy(
      alu, streams,
      make_spec(percents, trials_per_workload, seed, policy, scope,
                datapath_sites, /*burst_length=*/1));
}

AnatomyPoint run_data_point_anatomy(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  return TrialEngine(par).point_anatomy(
      alu, streams,
      make_spec({fault_percent}, trials_per_workload, seed, policy, scope,
                datapath_sites, burst_length));
}

TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng) {
  const DefectMap chip = DefectMap::manufacture(alu.defectable_sites(),
                                                cfg.defect_density, rng);
  const MaskGenerator gen(alu.fault_sites(), cfg.transient_percent,
                          cfg.policy);
  BitVec mask(alu.fault_sites());
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    gen.generate(rng, mask);
    alu.impose_defects(chip, mask);
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, mask.size()),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_defect_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const DefectConfig& cfg, int chips_per_workload, std::uint64_t seed) {
  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int chip = 0; chip < chips_per_workload; ++chip) {
      Rng rng = master.split(
          (w << 24) ^ static_cast<std::uint64_t>(chip) ^
          (static_cast<std::uint64_t>(cfg.defect_density * 1e6) << 28) ^
          (static_cast<std::uint64_t>(cfg.transient_percent * 100.0) << 44));
      stats.add(run_defect_trial(alu, streams[w], cfg, rng).percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = cfg.transient_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

}  // namespace nbx
