#include "sim/experiment.hpp"

#include <cassert>

#include "common/thread_pool.hpp"
#include "fault/defect_map.hpp"
#include "workload/image_ops.hpp"

namespace nbx {

TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng) {
  const std::size_t total_sites = alu.fault_sites();
  const std::size_t inject_sites = cfg.scope == InjectionScope::kDatapathOnly
                                       ? cfg.datapath_sites
                                       : total_sites;
  assert(inject_sites <= total_sites);
  // The fault *fraction* applies to the eligible sites; for the paper's
  // kAll scope this is exactly "a given fraction of the fault injection
  // points" (§4).
  const MaskGenerator gen(inject_sites, cfg.fault_percent, cfg.policy,
                          cfg.burst_length);

  BitVec mask(total_sites);
  BitVec scratch(inject_sites);
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    // "After each ALU computation, we generate a new fault mask" (§4).
    if (inject_sites == total_sites) {
      gen.generate(rng, mask);
    } else {
      gen.generate(rng, scratch);
      mask.clear_all();
      for (std::size_t i = 0; i < inject_sites; ++i) {
        if (scratch.get(i)) {
          mask.set(i, true);
        }
      }
    }
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, total_sites),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

namespace {

// Runs the (percent x workload x trial) grid and returns one
// percent_correct sample per cell, indexed [percent][workload][trial]
// flattened. Every cell is an independent work item whose RNG seed is a
// pure function of its coordinates (MaskGenerator::trial_seed), so the
// sample vector is bit-identical for any thread count or schedule.
std::vector<double> run_trial_grid(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  const std::size_t workloads = streams.size();
  const auto trials = static_cast<std::size_t>(trials_per_workload);
  const std::size_t per_percent = workloads * trials;
  const std::size_t total = percents.size() * per_percent;
  const std::uint64_t alu_hash = fnv1a64(alu.name());

  std::vector<double> samples(total, 0.0);
  const auto run_cell = [&](std::size_t i) {
    const std::size_t pi = i / per_percent;
    const std::size_t w = (i % per_percent) / trials;
    const std::size_t t = i % trials;
    TrialConfig cfg;
    cfg.fault_percent = percents[pi];
    cfg.policy = policy;
    cfg.burst_length = burst_length;
    cfg.scope = scope;
    cfg.datapath_sites = datapath_sites;
    Rng rng(MaskGenerator::trial_seed(seed, alu_hash, percents[pi], w, t));
    samples[i] = run_trial(alu, streams[w], cfg, rng).percent_correct;
  };

  if (resolve_threads(par.threads) <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(par.threads);
    pool.parallel_for(total, par.chunking, run_cell);
  }
  return samples;
}

// Folds one percent's samples into a DataPoint in fixed (workload-major)
// order, keeping the floating-point accumulation identical to the serial
// path regardless of which threads produced the samples.
DataPoint fold_point(const IAlu& alu, double fault_percent,
                     const double* samples, std::size_t count) {
  RunningStats stats;
  for (std::size_t i = 0; i < count; ++i) {
    stats.add(samples[i]);
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = fault_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

}  // namespace

DataPoint run_data_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    double fault_percent, int trials_per_workload, std::uint64_t seed,
    FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, std::size_t burst_length,
    const ParallelConfig& par) {
  const std::vector<double> samples =
      run_trial_grid(alu, streams, {fault_percent}, trials_per_workload,
                     seed, policy, scope, datapath_sites, burst_length, par);
  return fold_point(alu, fault_percent, samples.data(), samples.size());
}

std::vector<DataPoint> run_sweep(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const std::vector<double>& percents, int trials_per_workload,
    std::uint64_t seed, FaultCountPolicy policy, InjectionScope scope,
    std::size_t datapath_sites, const ParallelConfig& par) {
  // One flat grid over every (percent, workload, trial) cell: a sweep
  // parallelizes across its whole trial population, not point by point.
  const std::vector<double> samples =
      run_trial_grid(alu, streams, percents, trials_per_workload, seed,
                     policy, scope, datapath_sites, /*burst_length=*/1, par);
  const std::size_t per_percent =
      streams.size() * static_cast<std::size_t>(trials_per_workload);
  std::vector<DataPoint> points;
  points.reserve(percents.size());
  for (std::size_t pi = 0; pi < percents.size(); ++pi) {
    points.push_back(fold_point(alu, percents[pi],
                                samples.data() + pi * per_percent,
                                per_percent));
  }
  return points;
}

TrialResult run_defect_trial(const IAlu& alu,
                             const std::vector<Instruction>& stream,
                             const DefectConfig& cfg, Rng& rng) {
  const DefectMap chip = DefectMap::manufacture(alu.defectable_sites(),
                                                cfg.defect_density, rng);
  const MaskGenerator gen(alu.fault_sites(), cfg.transient_percent,
                          cfg.policy);
  BitVec mask(alu.fault_sites());
  TrialResult res;
  res.instructions = stream.size();
  for (const Instruction& ins : stream) {
    gen.generate(rng, mask);
    alu.impose_defects(chip, mask);
    const AluOutput out = alu.compute(ins.op, ins.a, ins.b,
                                      MaskView(mask, 0, mask.size()),
                                      &res.stats);
    if (out.value != ins.golden) {
      ++res.incorrect;
    }
  }
  res.percent_correct =
      stream.empty()
          ? 100.0
          : 100.0 * static_cast<double>(stream.size() - res.incorrect) /
                static_cast<double>(stream.size());
  return res;
}

DataPoint run_defect_point(
    const IAlu& alu, const std::vector<std::vector<Instruction>>& streams,
    const DefectConfig& cfg, int chips_per_workload, std::uint64_t seed) {
  Rng master(seed);
  RunningStats stats;
  for (std::size_t w = 0; w < streams.size(); ++w) {
    for (int chip = 0; chip < chips_per_workload; ++chip) {
      Rng rng = master.split(
          (w << 24) ^ static_cast<std::uint64_t>(chip) ^
          (static_cast<std::uint64_t>(cfg.defect_density * 1e6) << 28) ^
          (static_cast<std::uint64_t>(cfg.transient_percent * 100.0) << 44));
      stats.add(run_defect_trial(alu, streams[w], cfg, rng).percent_correct);
    }
  }
  DataPoint p;
  p.alu = std::string(alu.name());
  p.fault_percent = cfg.transient_percent;
  p.mean_percent_correct = stats.mean();
  p.stddev = stats.stddev();
  p.ci95 = ci95_half_width(stats.stddev(), stats.count());
  p.samples = stats.count();
  return p;
}

std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed) {
  const Bitmap image = Bitmap::paper_test_image(seed);
  std::vector<std::vector<Instruction>> streams;
  for (const PixelOp& op : paper_workloads()) {
    streams.push_back(make_stream(image, op));
  }
  return streams;
}

}  // namespace nbx
