// analytic.hpp — closed-form reliability predictions to validate the
// fault-injection simulator.
//
// The paper presents simulation results only; here we derive what the
// curves *should* look like from first principles and check the
// simulator against them. Two models:
//
//  1. First-order (single-fault composition): probe every single-site
//     fault once per instruction to find the set O of *observable*
//     sites (those whose lone flip corrupts the output). Under k
//     uniformly placed faults, the instruction is predicted correct
//     when none of the k faults lands in O:
//
//         P(correct) = C(N-|O|, k) / C(N, k)      (hypergeometric)
//
//     Assumption: fault effects compose independently — two observable
//     faults do not cancel, and unobservable faults never interact to
//     become observable. Accurate for the uncoded/Hamming/CMOS ALUs at
//     low-to-moderate rates; breaks down above ~20% where cancellation
//     and interaction dominate.
//
//  2. TMR pair model: a single fault is never observable through a TMR
//     LUT, so the first-order model degenerates to "always correct".
//     The real failure mode is two faults covering the same addressed
//     entry. With m addressed entries per instruction, 3 copy-sites
//     each, the instruction survives when every addressed entry keeps
//     at most one flipped copy:
//
//         P(correct) ~= prod over m entries of P(<=1 of its 3 sites hit)
//
//     evaluated with the same hypergeometric machinery (independence
//     across entries is the approximation).
#pragma once

#include <cstdint>
#include <vector>

#include "alu/alu_iface.hpp"
#include "workload/instruction_stream.hpp"

namespace nbx {

/// P[X = j] where X ~ Hypergeometric(N sites, K marked, k drawn):
/// drawing k fault positions out of N, probability exactly j land in a
/// marked subset of size K. Computed in log space; exact enough for all
/// N used here.
double hypergeometric_pmf(std::size_t N, std::size_t K, std::size_t k,
                          std::size_t j);

/// Convenience: P[X == 0].
double probability_no_hit(std::size_t N, std::size_t K, std::size_t k);

/// The set of observable single-fault sites for one instruction:
/// probes all fault_sites() single-bit masks. O(N) ALU evaluations.
std::size_t count_observable_sites(const IAlu& alu, const Instruction& ins);

/// First-order prediction of mean %-correct for a stream at a given
/// fault percentage (round-to-nearest count policy, like the paper).
double predict_first_order(const IAlu& alu,
                           const std::vector<Instruction>& stream,
                           double fault_percent);

/// TMR pair-model prediction for a blocked- or interleaved-TMR LUT ALU
/// (no module redundancy): `entries` addressed LUT entries per
/// instruction, `sites` total stored bits.
double predict_tmr_pairs(std::size_t sites, std::size_t entries,
                         double fault_percent);

/// Critical addressed entries per instruction for the NanoBox TMR ALU.
/// Logic opcodes exercise only the logic and select LUTs (2 per slice =
/// 16): a corrupted sum/carry entry changes an address whose alternate
/// select entry holds the same value. ADD exercises sum, carry and
/// select (3 per slice), minus the top slice's discarded carry = 23.
std::size_t critical_tmr_entries(Opcode op);

/// Pair-model prediction averaged over a stream, using each
/// instruction's opcode-specific critical entry count.
double predict_tmr_stream(std::size_t sites,
                          const std::vector<Instruction>& stream,
                          double fault_percent);

/// A (fault %, predicted %) curve for table rendering.
struct AnalyticPoint {
  double fault_percent = 0.0;
  double predicted_percent_correct = 0.0;
};

/// First-order curve over a sweep.
std::vector<AnalyticPoint> first_order_curve(
    const IAlu& alu, const std::vector<Instruction>& stream,
    const std::vector<double>& percents);

/// TMR pair-model curve over a sweep.
std::vector<AnalyticPoint> tmr_pair_curve(std::size_t sites,
                                          std::size_t entries,
                                          const std::vector<double>& percents);

}  // namespace nbx
