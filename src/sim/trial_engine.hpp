// trial_engine.hpp — the unified trial executor.
//
// The paper's architecture is one fault-masking idea applied recursively
// at bit, module and system level; the simulator mirrors that with one
// execution core applied at every level. A TrialEngine owns the
// (threads x batch_lanes x anatomy-sink x profiler x progress)
// composition exactly once:
//
//   * `threads` / `chunking` — how work items fan out over the pool;
//   * `batch_lanes`          — scalar IAlu vs bit-parallel BatchAlu
//                              sweep backend (0 = scalar);
//   * anatomy                — the sweep_anatomy/point_anatomy variants
//                              attach an obs::Counters sink per item and
//                              fold per percent in deterministic order;
//   * `profiler`             — each backend's items are timed under the
//                              backend's stage name, folds under "fold";
//   * `on_point`             — optional per-data-point progress hook.
//
// Work enters through the TrialBackend concept: a backend exposes a flat
// item space (item_count), a profiler stage name (stage), and a body
// (run_item) that must be a pure function of the item index writing into
// per-index slots. The engine supplies scheduling; the backend supplies
// determinism — per-item RNG seeds are derived counter-style
// (MaskGenerator::trial_seed), so every thread count and schedule is
// bit-identical. The single-ALU sweep backends (scalar and batched) live
// behind sweep()/point(); system-level grid simulation reuses the same
// engine through grid/grid_trials.hpp.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "alu/alu_iface.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "fault/mask_generator.hpp"
#include "fault/scenario.hpp"
#include "fault/sweep.hpp"
#include "obs/counters.hpp"
#include "obs/profiler.hpp"
#include "workload/instruction_stream.hpp"

namespace nbx {

/// What portion of an ALU's site space receives injected faults.
/// kDatapathOnly is an ablation (not in the paper): the module voter and
/// any storage bits are kept fault-free to isolate their contribution.
enum class InjectionScope : std::uint8_t { kAll, kDatapathOnly };

/// Parameters of a single-ALU experiment trial set.
struct TrialConfig {
  double fault_percent = 0.0;
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
  std::size_t burst_length = 1;  ///< used by FaultCountPolicy::kBurst
  InjectionScope scope = InjectionScope::kAll;
  /// Sites eligible for injection when scope == kDatapathOnly (leading
  /// segment of the mask). Ignored for kAll.
  std::size_t datapath_sites = 0;
  std::size_t burst_rows = 1;        ///< 2-D strike height (kBurst only)
  std::size_t burst_row_stride = 0;  ///< sites per row; 0 = 1-D strikes
};

/// Result of one trial (one workload, one pass over its instructions).
struct TrialResult {
  double percent_correct = 0.0;
  std::size_t instructions = 0;
  std::size_t incorrect = 0;
  ModuleStats stats;
};

/// Runs one workload through `alu` once, a fresh fault mask per
/// instruction, and scores correctness against the precomputed goldens.
/// With `anatomy` non-null, the trial additionally tallies the full
/// fault anatomy (injection volume, per-code decode outcomes, module
/// votes, end-to-end silent/caught classification) into it. Accounting
/// is passive — it draws nothing from `rng` and never changes the
/// simulated outcome, so attaching a sink cannot move any golden.
TrialResult run_trial(const IAlu& alu,
                      const std::vector<Instruction>& stream,
                      const TrialConfig& cfg, Rng& rng,
                      obs::Counters* anatomy = nullptr);

/// How a TrialEngine fans work items out across worker threads.
/// Per-trial RNG seeds are derived counter-style from (seed, ALU-name
/// hash, fault percent, workload index, trial index) — see
/// MaskGenerator::trial_seed — and samples are folded into statistics in
/// a fixed order, so results are bit-identical for every `threads`
/// value and every scheduling.
struct ParallelConfig {
  unsigned threads = 1;   ///< total worker threads; 1 = serial, 0 = all
                          ///< hardware threads
  std::size_t chunking = 0;  ///< trials per work unit; 0 = auto
  /// Trials packed per bit-parallel batch (see src/simd/):
  /// 0 = scalar engine (default); 1..512 = SIMD-wide lane engine with
  /// that many lanes per group (rounded up internally to a whole
  /// 64/128/256/512-bit site row; the SIMD dispatch tier is CPUID-
  /// resolved per run, overridable via NBX_SIMD_TIER or
  /// simd::set_tier_override). Any value on any tier yields
  /// bit-identical results — lanes reuse the scalar per-trial seeds
  /// verbatim — so this is purely a throughput knob. Composes with
  /// `threads`: the work unit becomes a lane group instead of a single
  /// trial.
  unsigned batch_lanes = 0;
  /// Optional stage profiler (not owned): when set, the engine times
  /// each work item under its backend's stage name ("trial" scalar,
  /// "lane_group" batched, "grid_trial" system-level) and the
  /// statistics fold under "fold". Wall-clock only; never affects
  /// results.
  obs::Profiler* profiler = nullptr;
};

/// One plotted point: an ALU at one fault percentage, averaged over
/// `trials_per_workload` trials of each workload.
struct DataPoint {
  std::string alu;
  double fault_percent = 0.0;
  double mean_percent_correct = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width on the mean (Student's t)
  std::size_t samples = 0;
};

/// A full sweep of one ALU plus its fault anatomy: metrics[i] aggregates
/// the counters of every trial behind points[i] (same index, same fault
/// percent).
struct SweepAnatomy {
  std::vector<DataPoint> points;
  std::vector<obs::Counters> metrics;
};

/// One data point plus its aggregated fault anatomy.
struct AnatomyPoint {
  DataPoint point;
  obs::Counters counters;
};

/// Everything that defines one ALU's trip through the engine besides the
/// ALU itself and its workload streams.
struct SweepSpec {
  std::vector<double> percents;  ///< fault percentages to evaluate
  int trials_per_workload = kPaperTrialsPerWorkload;
  std::uint64_t seed = 0;
  FaultCountPolicy policy = FaultCountPolicy::kRoundNearest;
  InjectionScope scope = InjectionScope::kAll;
  std::size_t datapath_sites = 0;  ///< used when scope == kDatapathOnly
  std::size_t burst_length = 1;    ///< used by FaultCountPolicy::kBurst
  /// Correlated/aging overlay (fault/scenario.hpp). The default scenario
  /// is the paper's i.i.d. model: trial t's rate is schedule.at(percent,
  /// t, trials) and enters the counter-based trial seed by bit pattern,
  /// so a constant schedule reproduces historical results exactly and
  /// every schedule is bit-identical across threads × lanes × SIMD tiers.
  FaultScenario scenario;
};

/// A unit of schedulable work: a flat item space whose bodies are pure
/// functions of the item index (writing into per-index slots), plus the
/// profiler stage its items are timed under. Both the single-ALU sweep
/// backends (scalar trials, batched lane groups) and the system-level
/// grid backend satisfy this.
template <typename B>
concept TrialBackend = requires(B& b, const B& cb, std::size_t i) {
  { cb.item_count() } -> std::convertible_to<std::size_t>;
  { cb.stage() } -> std::convertible_to<std::string_view>;
  b.run_item(i);
};

/// The unified trial executor. Construction is cheap (the thread pool is
/// created per execute() call); engines are freely copyable values.
class TrialEngine {
 public:
  TrialEngine() = default;
  explicit TrialEngine(const ParallelConfig& par) : par_(par) {}

  [[nodiscard]] const ParallelConfig& parallel() const { return par_; }

  /// Installs a per-data-point progress hook: sweep()/sweep_anatomy()
  /// then evaluate one fault percentage at a time and invoke `cb` after
  /// each (percents.size() calls per sweep). Chunking the sweep this way
  /// cannot change any number — per-trial seeds hash the percent's
  /// value, not its position in the sweep.
  void set_on_point(std::function<void()> cb) { on_point_ = std::move(cb); }

  /// Evaluates `alu` at every percent in the spec. Backend selection
  /// follows parallel().batch_lanes: 0 = scalar IAlu trials, >= 1 =
  /// bit-parallel BatchAlu lane groups; both bit-identical.
  [[nodiscard]] std::vector<DataPoint> sweep(
      const IAlu& alu,
      const std::vector<std::vector<Instruction>>& streams,
      const SweepSpec& spec) const;

  /// sweep() with an anatomy sink attached to every trial. The points
  /// are bit-identical to sweep()'s (accounting is passive), and the
  /// counters themselves are bit-identical across threads and
  /// batch_lanes: pure integer sums over a fixed trial population,
  /// merged in deterministic per-percent order.
  [[nodiscard]] SweepAnatomy sweep_anatomy(
      const IAlu& alu,
      const std::vector<std::vector<Instruction>>& streams,
      const SweepSpec& spec) const;

  /// One data point: the spec's single percentage (percents must hold
  /// exactly one entry), all samples folded into one DataPoint.
  [[nodiscard]] DataPoint point(
      const IAlu& alu,
      const std::vector<std::vector<Instruction>>& streams,
      const SweepSpec& spec) const;

  /// point() with the anatomy sink attached.
  [[nodiscard]] AnatomyPoint point_anatomy(
      const IAlu& alu,
      const std::vector<std::vector<Instruction>>& streams,
      const SweepSpec& spec) const;

  /// Runs a backend's whole item space under this engine's scheduling:
  /// serial for threads <= 1 (or a single item), the shared ThreadPool
  /// otherwise, each item timed under the backend's profiler stage.
  template <TrialBackend B>
  void execute(B& backend) const {
    const std::size_t total = backend.item_count();
    const std::size_t st =
        par_.profiler != nullptr
            ? par_.profiler->stage_index(backend.stage())
            : 0;
    const auto run = [&](std::size_t i) {
      const obs::ScopedTimer timer(par_.profiler, st);
      backend.run_item(i);
    };
    if (resolve_threads(par_.threads) <= 1 || total <= 1) {
      for (std::size_t i = 0; i < total; ++i) {
        run(i);
      }
    } else {
      ThreadPool pool(par_.threads);
      pool.parallel_for(total, par_.chunking, run);
    }
  }

 private:
  SweepAnatomy run_spec(const IAlu& alu,
                        const std::vector<std::vector<Instruction>>& streams,
                        const SweepSpec& spec, bool want_anatomy) const;

  ParallelConfig par_;
  std::function<void()> on_point_;
};

// ------------------------------------------------------------------
// Sweep shard surface.
//
// The scalar sweep's flat [percent][workload][trial] item space, exposed
// as a public primitive so out-of-engine executors — the nbxd serve
// worker pool (src/serve/) shards a sweep by item range across workers —
// can run any contiguous slice and re-merge bit-identically with an
// in-engine run. Every item's RNG seed is a pure function of its
// coordinates (MaskGenerator::trial_seed), every item writes only its
// own absolute slot, and the fold accumulates slots in index order, so
// `run_sweep_items` over any partition of [0, sweep_item_count) followed
// by `fold_sweep_samples` per percent reproduces
// TrialEngine::sweep_anatomy (scalar backend) bit for bit.

/// Number of items in the flat scalar sweep grid:
/// percents × workloads × trials_per_workload.
[[nodiscard]] std::size_t sweep_item_count(
    const std::vector<std::vector<Instruction>>& streams,
    const SweepSpec& spec);

/// Runs items [first, last) of the flat grid. `samples` (and `per_item`,
/// when non-null) are *absolute-indexed* arrays of sweep_item_count()
/// slots: item i writes samples[i] / per_item[i] only, so disjoint
/// shards may target the same arrays from different threads.
void run_sweep_items(const IAlu& alu,
                     const std::vector<std::vector<Instruction>>& streams,
                     const SweepSpec& spec, std::size_t first,
                     std::size_t last, double* samples,
                     obs::Counters* per_item = nullptr);

/// Folds one percent's samples (its contiguous workloads × trials slice
/// of the flat grid) into a DataPoint in index order — the exact
/// accumulation the engine performs, so shard-and-merge folds match the
/// engine's doubles bit for bit.
[[nodiscard]] DataPoint fold_sweep_samples(std::string_view alu_name,
                                           double fault_percent,
                                           const double* samples,
                                           std::size_t count);

/// The paper's two workload streams over the standard 64-pixel image.
std::vector<std::vector<Instruction>> paper_streams(std::uint64_t seed = 42);

}  // namespace nbx
