// manifest.hpp — run-provenance manifests for bench artifacts.
//
// A BENCH_*.json file full of numbers is only evidence if you know what
// produced it: which commit, which compiler, which SIMD tier, which
// seed-derivation chain. RunManifest captures that context once per run
// and bench_json.cpp embeds it in every bench document, so nbxreport
// can tell "real regression" apart from "compared a Sanitize build
// against RelWithDebInfo on another machine".
//
// Two fingerprints anchor the scientific claims:
//   * seed_chain_fingerprint hashes live outputs of the deterministic
//     seed chain (derive_seed, fnv1a64, MaskGenerator::trial_seed) on
//     fixed probe inputs — if the chain's arithmetic ever drifts, every
//     manifest says so.
//   * golden_registry_fingerprint is the pinned FNV-1a fingerprint of
//     the golden-value registry (tests/goldens.hpp); the goldens schema
//     test cross-checks this constant against the live registry, so a
//     manifest's claim and the test suite's claim cannot diverge
//     silently.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace nbx {

/// Pinned fingerprint of the golden-value registry: FNV-1a over the
/// canonical "name=value\n" lines of tests/goldens.hpp. Bumping it is a
/// deliberate act reviewed together with the golden change
/// (tests/goldens/goldens_schema_test.cpp enforces the match).
inline constexpr std::uint64_t kGoldenRegistryFingerprint =
    13829800972187870810ULL;

/// Provenance of one bench run. All fields are plain strings/numbers so
/// the manifest survives JSON round trips byte-for-byte.
struct RunManifest {
  int schema_version = 1;
  std::string git_describe;    ///< `git describe --always --dirty --tags`
  std::string build_type;      ///< CMAKE_BUILD_TYPE at configure time
  std::string compiler;        ///< compiler id + __VERSION__
  std::string hostname;        ///< gethostname()
  std::string timestamp_utc;   ///< ISO 8601, e.g. "2026-08-08T12:34:56Z"
  std::string cpu_simd_tier;   ///< best tier this CPU supports
  std::string active_simd_tier;  ///< tier the run actually dispatched
  std::uint64_t seed_chain_fingerprint = 0;
  std::uint64_t golden_registry_fingerprint = kGoldenRegistryFingerprint;
  unsigned threads = 0;        ///< resolved worker-thread count
  unsigned lanes = 0;          ///< batch lanes (0 = scalar backend)
  bool captured = false;       ///< set by capture(); default instances
                               ///< are placeholders

  /// Captures the current process/build/seed-chain context.
  static RunManifest capture(unsigned threads, unsigned lanes);
};

/// Probes the deterministic seed chain on fixed inputs and hashes the
/// results; any change to derive_seed / fnv1a64 / trial_seed arithmetic
/// changes this value.
std::uint64_t seed_chain_fingerprint();

/// Writes the manifest as one JSON object, keys in declaration order.
/// `indent` prefixes every line ("" = compact multi-line at column 0).
void write_manifest_json(std::ostream& os, const RunManifest& m,
                         const char* indent = "");

}  // namespace nbx
