// report.hpp — bench-over-bench comparison and the regression gate.
//
// nbxreport turns a pile of BENCH_*.json files into a decision: did
// this run regress against that one? The library half loads bench
// documents (schema: sim/bench_json.cpp), aligns their sweep points by
// (alu, fault_percent) key, computes throughput and result deltas, and
// renders markdown or JSON. The gate half turns the deltas into a
// verdict: result drift is always a violation (the simulator is
// deterministic — identical configs must produce identical numbers),
// throughput may regress up to a threshold.
//
// Alignment keys use the fault_percent *lexeme* from the JSON, not a
// re-serialized double, so "2.0" and "2" from different writers never
// silently collide or split.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace nbx::report {

/// One sweep data point as loaded from a bench document.
struct LoadedPoint {
  std::string alu;
  std::string fault_percent;  ///< source lexeme — the alignment key
  double mean_percent_correct = 0.0;
  double stddev = 0.0;
  std::uint64_t samples = 0;
};

/// One parsed BENCH_*.json document, flattened to what comparison needs.
struct LoadedBench {
  std::string path;
  std::string bench;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  std::uint64_t trials = 0;
  double wall_seconds = 0.0;
  double trials_per_second = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, std::string>> manifest;  ///< flat k=v
  std::vector<LoadedPoint> points;
};

/// Parses one bench JSON document. Returns nullopt and sets `error` on
/// syntax errors or missing required fields.
std::optional<LoadedBench> load_bench(const std::string& path,
                                      std::string* error);

/// Gate thresholds.
struct GateOptions {
  /// Maximum tolerated throughput loss, percent of the baseline's
  /// trials/s. Candidates slower than (1 - x/100) * base fail.
  double max_slowdown_percent = 5.0;
  /// Permit mean/stddev/samples drift on aligned points (for comparing
  /// intentionally different configurations). Off by default: identical
  /// configs must be bit-identical.
  bool allow_result_drift = false;
};

/// One aligned point's delta.
struct PointDelta {
  std::string alu;
  std::string fault_percent;
  double base_mean = 0.0;
  double cand_mean = 0.0;
  double base_stddev = 0.0;
  double cand_stddev = 0.0;
  std::uint64_t base_samples = 0;
  std::uint64_t cand_samples = 0;
  [[nodiscard]] bool drifted() const {
    return base_mean != cand_mean || base_stddev != cand_stddev ||
           base_samples != cand_samples;
  }
};

/// One named scalar metric's delta (metrics present in both files).
struct MetricDelta {
  std::string name;
  double base = 0.0;
  double cand = 0.0;
};

/// Base-vs-candidate comparison result.
struct Comparison {
  std::string base_path;
  std::string cand_path;
  std::string bench;  ///< shared bench name ("" when they disagree)
  double base_tps = 0.0;
  double cand_tps = 0.0;
  std::vector<PointDelta> points;           ///< aligned by (alu, percent)
  std::vector<std::string> only_in_base;    ///< keys missing from cand
  std::vector<std::string> only_in_cand;    ///< keys missing from base
  std::vector<MetricDelta> metrics;
  /// Manifest keys whose values differ (informational, never gated).
  std::vector<std::string> manifest_diffs;
  /// Human-readable gate violations; empty = gate passes.
  std::vector<std::string> violations;

  [[nodiscard]] bool gate_pass() const { return violations.empty(); }
  /// cand_tps / base_tps - 1, in percent (positive = faster).
  [[nodiscard]] double throughput_delta_percent() const;
};

/// Compares candidate against base under `gate`.
Comparison compare(const LoadedBench& base, const LoadedBench& cand,
                   const GateOptions& gate);

/// Renders one comparison as markdown (tables + verdict).
void write_markdown(std::ostream& os, const Comparison& c);

/// Renders one comparison as a JSON object.
void write_json(std::ostream& os, const Comparison& c);

}  // namespace nbx::report
