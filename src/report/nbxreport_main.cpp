// nbxreport — compare bench JSON artifacts and gate regressions.
//
//   nbxreport [options] BASE.json CANDIDATE.json [MORE.json...]
//
// The first file is the baseline; every later file is compared against
// it in order. With three or more files the renderings concatenate (one
// section per candidate) and --gate fails if ANY comparison fails.
//
// Options:
//   --format md|json        output format (default md)
//   --out PATH              write the report to PATH instead of stdout
//   --gate                  exit 1 when a comparison fails the gate
//   --max-slowdown-pct X    throughput tolerance (default 5.0)
//   --allow-result-drift    permit mean/stddev/samples drift
//
// Exit codes: 0 ok (gate passed or not requested), 1 gate failed,
// 2 usage or load error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "report/report.hpp"

namespace {

constexpr const char* kUsage =
    "usage: nbxreport [options] BASE.json CANDIDATE.json [MORE.json...]\n"
    "\n"
    "Compares bench JSON artifacts (sim/bench_json schema) against the\n"
    "first file and renders the deltas.\n"
    "\n"
    "options:\n"
    "  --format md|json        output format (default md)\n"
    "  --out PATH              write report to PATH (default stdout)\n"
    "  --gate                  exit 1 when a comparison fails the gate\n"
    "  --max-slowdown-pct X    throughput tolerance in percent (default 5)\n"
    "  --allow-result-drift    permit result drift on aligned points\n"
    "  --help                  this text\n";

}  // namespace

int main(int argc, char** argv) {
  const nbx::CliArgs cli(argc, argv,
                         {"gate", "allow-result-drift", "help"});
  if (cli.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string bad_flags = cli.unknown_flag_message(
      {"format", "out", "gate", "max-slowdown-pct", "allow-result-drift",
       "help"});
  if (!bad_flags.empty()) {
    std::cerr << "error: " << bad_flags << "\n" << kUsage;
    return 2;
  }
  const std::vector<std::string>& files = cli.positional();
  if (files.size() < 2) {
    std::cerr << "error: need at least 2 bench JSON files\n" << kUsage;
    return 2;
  }
  const std::string format = cli.get("format", "md");
  if (format != "md" && format != "json") {
    std::cerr << "error: --format must be md or json\n";
    return 2;
  }

  nbx::report::GateOptions gate;
  gate.max_slowdown_percent = cli.get_double("max-slowdown-pct", 5.0);
  gate.allow_result_drift = cli.has("allow-result-drift");

  std::vector<nbx::report::LoadedBench> benches;
  for (const std::string& path : files) {
    std::string error;
    std::optional<nbx::report::LoadedBench> b =
        nbx::report::load_bench(path, &error);
    if (!b) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    benches.push_back(std::move(*b));
  }

  std::ofstream out_file;
  std::ostream* os = &std::cout;
  const std::string out_path = cli.get("out");
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "error: cannot open '" << out_path << "' for writing\n";
      return 2;
    }
    os = &out_file;
  }

  bool all_pass = true;
  for (std::size_t i = 1; i < benches.size(); ++i) {
    const nbx::report::Comparison c =
        nbx::report::compare(benches.front(), benches[i], gate);
    all_pass = all_pass && c.gate_pass();
    if (format == "md") {
      nbx::report::write_markdown(*os, c);
    } else {
      nbx::report::write_json(*os, c);
    }
  }
  os->flush();
  if (!all_pass) {
    std::cerr << "nbxreport: gate FAILED\n";
    if (cli.has("gate")) {
      return 1;
    }
  } else if (cli.has("gate")) {
    std::cerr << "nbxreport: gate passed\n";
  }
  return 0;
}
