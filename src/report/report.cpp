#include "report/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "check/json_value.hpp"
#include "obs/json.hpp"

namespace nbx::report {

namespace {

using check::JsonValue;

double num_or(const JsonValue* v, double fallback) {
  if (v == nullptr || !v->is_number()) {
    return fallback;
  }
  return v->as_double().value_or(fallback);
}

std::uint64_t u64_or(const JsonValue* v, std::uint64_t fallback) {
  if (v == nullptr || !v->is_number()) {
    return fallback;
  }
  return v->as_u64().value_or(fallback);
}

std::string str_or(const JsonValue* v, const std::string& fallback) {
  if (v == nullptr || !v->is_string()) {
    return fallback;
  }
  return v->as_string();
}

std::string point_key(const std::string& alu,
                      const std::string& fault_percent) {
  return alu + " @ " + fault_percent + "%";
}

std::string fmt(double v) { return nbx::json_double(v); }

}  // namespace

std::optional<LoadedBench> load_bench(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "'";
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const std::optional<JsonValue> doc =
      JsonValue::parse(buf.str(), &parse_error);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = path + ": " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }

  LoadedBench b;
  b.path = path;
  b.bench = str_or(doc->find("bench"), "");
  if (b.bench.empty()) {
    if (error != nullptr) {
      *error = path + ": missing \"bench\" field (not a bench document?)";
    }
    return std::nullopt;
  }
  b.seed = u64_or(doc->find("seed"), 0);
  b.threads = static_cast<unsigned>(u64_or(doc->find("threads"), 0));
  b.trials = u64_or(doc->find("trials"), 0);
  b.wall_seconds = num_or(doc->find("wall_seconds"), 0.0);
  b.trials_per_second = num_or(doc->find("trials_per_second"), 0.0);

  if (const JsonValue* metrics = doc->find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, v] : metrics->members()) {
      if (v.is_number()) {
        b.metrics.emplace_back(name, v.as_double().value_or(0.0));
      }
    }
  }
  if (const JsonValue* manifest = doc->find("manifest");
      manifest != nullptr && manifest->is_object()) {
    for (const auto& [name, v] : manifest->members()) {
      b.manifest.emplace_back(
          name, v.is_string() ? v.as_string()
                              : v.is_number() ? v.number_lexeme() : "");
    }
  }
  if (const JsonValue* sweeps = doc->find("sweeps");
      sweeps != nullptr && sweeps->is_array()) {
    for (const JsonValue& sweep : sweeps->items()) {
      const std::string alu = str_or(sweep.find("alu"), "?");
      const JsonValue* points = sweep.find("points");
      if (points == nullptr || !points->is_array()) {
        continue;
      }
      for (const JsonValue& p : points->items()) {
        LoadedPoint lp;
        lp.alu = alu;
        const JsonValue* pct = p.find("fault_percent");
        lp.fault_percent =
            pct != nullptr && pct->is_number() ? pct->number_lexeme() : "?";
        lp.mean_percent_correct =
            num_or(p.find("mean_percent_correct"), 0.0);
        lp.stddev = num_or(p.find("stddev"), 0.0);
        lp.samples = u64_or(p.find("samples"), 0);
        b.points.push_back(std::move(lp));
      }
    }
  }
  return b;
}

double Comparison::throughput_delta_percent() const {
  if (base_tps <= 0.0) {
    return 0.0;
  }
  return 100.0 * (cand_tps / base_tps - 1.0);
}

Comparison compare(const LoadedBench& base, const LoadedBench& cand,
                   const GateOptions& gate) {
  Comparison c;
  c.base_path = base.path;
  c.cand_path = cand.path;
  c.base_tps = base.trials_per_second;
  c.cand_tps = cand.trials_per_second;

  if (base.bench != cand.bench) {
    c.violations.push_back("bench name mismatch: base is \"" + base.bench +
                           "\", candidate is \"" + cand.bench + "\"");
  } else {
    c.bench = base.bench;
  }

  // Align points by (alu, fault_percent-lexeme).
  for (const LoadedPoint& bp : base.points) {
    const auto it = std::find_if(
        cand.points.begin(), cand.points.end(), [&](const LoadedPoint& cp) {
          return cp.alu == bp.alu && cp.fault_percent == bp.fault_percent;
        });
    if (it == cand.points.end()) {
      c.only_in_base.push_back(point_key(bp.alu, bp.fault_percent));
      continue;
    }
    PointDelta d;
    d.alu = bp.alu;
    d.fault_percent = bp.fault_percent;
    d.base_mean = bp.mean_percent_correct;
    d.cand_mean = it->mean_percent_correct;
    d.base_stddev = bp.stddev;
    d.cand_stddev = it->stddev;
    d.base_samples = bp.samples;
    d.cand_samples = it->samples;
    if (d.drifted() && !gate.allow_result_drift) {
      c.violations.push_back(
          "result drift at " + point_key(d.alu, d.fault_percent) +
          ": mean " + fmt(d.base_mean) + " -> " + fmt(d.cand_mean) +
          ", stddev " + fmt(d.base_stddev) + " -> " + fmt(d.cand_stddev) +
          ", samples " + std::to_string(d.base_samples) + " -> " +
          std::to_string(d.cand_samples));
    }
    c.points.push_back(std::move(d));
  }
  for (const LoadedPoint& cp : cand.points) {
    const bool in_base = std::any_of(
        base.points.begin(), base.points.end(), [&](const LoadedPoint& bp) {
          return bp.alu == cp.alu && bp.fault_percent == cp.fault_percent;
        });
    if (!in_base) {
      c.only_in_cand.push_back(point_key(cp.alu, cp.fault_percent));
    }
  }
  if (!c.only_in_base.empty()) {
    c.violations.push_back(
        std::to_string(c.only_in_base.size()) +
        " data point(s) missing from the candidate (first: " +
        c.only_in_base.front() + ")");
  }

  // Shared scalar metrics (informational).
  for (const auto& [name, bv] : base.metrics) {
    for (const auto& [cname, cv] : cand.metrics) {
      if (name == cname) {
        c.metrics.push_back(MetricDelta{name, bv, cv});
        break;
      }
    }
  }

  // Manifest context differences (informational, never gated — they
  // explain regressions rather than constitute them).
  for (const auto& [key, bv] : base.manifest) {
    for (const auto& [ck, cv] : cand.manifest) {
      if (key == ck && bv != cv && key != "timestamp_utc") {
        c.manifest_diffs.push_back(key + ": " + bv + " -> " + cv);
        break;
      }
    }
  }

  // Throughput gate.
  if (c.base_tps > 0.0 && c.cand_tps > 0.0) {
    const double floor = c.base_tps * (1.0 - gate.max_slowdown_percent / 100.0);
    if (c.cand_tps < floor) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "throughput regression: %.0f -> %.0f trials/s "
                    "(%+.1f%%, tolerance -%.1f%%)",
                    c.base_tps, c.cand_tps, c.throughput_delta_percent(),
                    gate.max_slowdown_percent);
      c.violations.emplace_back(buf);
    }
  }
  return c;
}

void write_markdown(std::ostream& os, const Comparison& c) {
  os << "# nbxreport: " << (c.bench.empty() ? "(mismatched benches)" : c.bench)
     << "\n\n";
  os << "- base: `" << c.base_path << "`\n";
  os << "- candidate: `" << c.cand_path << "`\n";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "- throughput: %.0f -> %.0f trials/s (%+.2f%%)\n", c.base_tps,
                c.cand_tps, c.throughput_delta_percent());
  os << buf;
  os << "- verdict: " << (c.gate_pass() ? "**PASS**" : "**FAIL**") << "\n\n";

  if (!c.violations.empty()) {
    os << "## Violations\n\n";
    for (const std::string& v : c.violations) {
      os << "- " << v << "\n";
    }
    os << "\n";
  }
  if (!c.points.empty()) {
    os << "## Aligned points\n\n";
    os << "| alu | fault % | base mean | cand mean | drift |\n";
    os << "|-----|---------|-----------|-----------|-------|\n";
    for (const PointDelta& d : c.points) {
      os << "| " << d.alu << " | " << d.fault_percent << " | "
         << fmt(d.base_mean) << " | " << fmt(d.cand_mean) << " | "
         << (d.drifted() ? "YES" : "-") << " |\n";
    }
    os << "\n";
  }
  if (!c.only_in_base.empty() || !c.only_in_cand.empty()) {
    os << "## Unaligned points\n\n";
    for (const std::string& k : c.only_in_base) {
      os << "- only in base: " << k << "\n";
    }
    for (const std::string& k : c.only_in_cand) {
      os << "- only in candidate: " << k << "\n";
    }
    os << "\n";
  }
  if (!c.metrics.empty()) {
    os << "## Metrics\n\n";
    os << "| metric | base | cand |\n";
    os << "|--------|------|------|\n";
    for (const MetricDelta& m : c.metrics) {
      os << "| " << m.name << " | " << fmt(m.base) << " | " << fmt(m.cand)
         << " |\n";
    }
    os << "\n";
  }
  if (!c.manifest_diffs.empty()) {
    os << "## Manifest differences\n\n";
    for (const std::string& d : c.manifest_diffs) {
      os << "- " << d << "\n";
    }
    os << "\n";
  }
}

void write_json(std::ostream& os, const Comparison& c) {
  const auto string_array = [&](const std::vector<std::string>& v) {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << (i ? "," : "") << "\"" << nbx::json_escape(v[i]) << "\"";
    }
    os << "]";
  };
  os << "{\"bench\":\"" << nbx::json_escape(c.bench) << "\"";
  os << ",\"base\":\"" << nbx::json_escape(c.base_path) << "\"";
  os << ",\"candidate\":\"" << nbx::json_escape(c.cand_path) << "\"";
  os << ",\"base_trials_per_second\":" << fmt(c.base_tps);
  os << ",\"cand_trials_per_second\":" << fmt(c.cand_tps);
  os << ",\"throughput_delta_percent\":" << fmt(c.throughput_delta_percent());
  os << ",\"gate_pass\":" << (c.gate_pass() ? "true" : "false");
  os << ",\"violations\":";
  string_array(c.violations);
  os << ",\"only_in_base\":";
  string_array(c.only_in_base);
  os << ",\"only_in_candidate\":";
  string_array(c.only_in_cand);
  os << ",\"points\":[";
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    const PointDelta& d = c.points[i];
    os << (i ? "," : "") << "{\"alu\":\"" << nbx::json_escape(d.alu)
       << "\",\"fault_percent\":" << d.fault_percent
       << ",\"base_mean\":" << fmt(d.base_mean)
       << ",\"cand_mean\":" << fmt(d.cand_mean)
       << ",\"drift\":" << (d.drifted() ? "true" : "false") << "}";
  }
  os << "],\"metrics\":[";
  for (std::size_t i = 0; i < c.metrics.size(); ++i) {
    const MetricDelta& m = c.metrics[i];
    os << (i ? "," : "") << "{\"name\":\"" << nbx::json_escape(m.name)
       << "\",\"base\":" << fmt(m.base) << ",\"cand\":" << fmt(m.cand)
       << "}";
  }
  os << "],\"manifest_diffs\":";
  string_array(c.manifest_diffs);
  os << "}\n";
}

}  // namespace nbx::report
