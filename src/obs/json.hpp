// json.hpp — dependency-free JSON emission primitives.
//
// The observability layer (counters, profiles, trace streams) and the
// bench result sink all hand-roll their JSON; these two helpers are the
// shared bottom: correct string escaping and round-trippable doubles.
// They live in obs/ — the lowest instrumentation layer — so every
// subsystem above common/ can emit JSON without linking the sim library.
#pragma once

#include <string>
#include <string_view>

namespace nbx {

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Serializes one double as JSON: round-trippable shortest form;
/// NaN/inf become null (JSON has no representation for them).
std::string json_double(double v);

}  // namespace nbx
