// progress.hpp — throttled stderr progress line for long sweeps.
//
// Prints "\r<label>: done/total points (42%) | N trials/s | ETA 1m23s"
// at most a few times a second so multi-minute benches aren't silent.
// Purely cosmetic: it never touches the simulation or its RNG.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace nbx::obs {

/// Humanizes a non-negative duration for progress lines: "12.3s" under
/// a minute, "4m07s" under an hour, "2h05m" beyond. Negative or
/// non-finite values render as "?".
std::string format_duration(double seconds);

class ProgressReporter {
 public:
  /// total_units: work units (data points) expected; trials_per_unit:
  /// trials behind each unit, used for the trials/s rate. os is
  /// typically std::cerr; the reporter only writes, never flushes
  /// state anywhere else.
  ProgressReporter(std::ostream& os, std::string label,
                   std::size_t total_units, std::uint64_t trials_per_unit);

  /// Marks `n` more units done and reprints if the throttle allows.
  void tick(std::size_t n = 1);

  /// Final print plus a newline so the line sticks. No-op on a
  /// reporter that never ticked (safe to call unconditionally).
  void finish();

  std::size_t done() const { return done_; }

  /// Fraction complete in [0,1]; 0 for a zero-total reporter.
  double fraction_done() const;

  /// Current ETA estimate in seconds: elapsed * remaining / done.
  /// 0 until the first tick (no completed work to extrapolate from).
  double eta_seconds() const;

 private:
  void print(bool force);

  std::ostream& os_;
  std::string label_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::uint64_t trials_per_unit_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  bool printed_ = false;
};

}  // namespace nbx::obs
