// metrics.hpp — the process-wide runtime metrics registry.
//
// Where obs::Counters answers "what happened to the faults inside one
// deterministic experiment", the MetricsRegistry answers "what is this
// process doing right now": how many trials the engine has executed,
// how busy the thread pool's workers are, how big the per-worker arenas
// grew, how many wafers a study manufactured. It is the scrape surface
// a long-running sweep service (the ROADMAP's `nbxd`) needs — named
// counters, gauges and log2 histograms with small label sets, exported
// as Prometheus text exposition or JSON, with an optional periodic
// snapshot thread emitting JSONL for long soaks.
//
// Contracts (mirroring obs::Counters' nullable-sink discipline):
//   * The registry is OFF by default: obs::metrics() returns nullptr
//     and every instrumentation hook is guarded by one pointer test.
//     Detached, the instrumented code allocates nothing and the cost is
//     unmeasurable (tests/audit/alloc_audit_test.cpp counts).
//   * Attached, accounting is passive: metric updates never draw from a
//     trial RNG and never feed back into the simulation, so attaching a
//     registry can never move a pinned golden.
//   * Counter increments are exact under concurrency: each counter owns
//     a small array of cache-line-padded per-thread-slot shards that
//     are merged on snapshot — relaxed atomic adds, no locks on the hot
//     path, no lost updates.
//   * Exposition output is deterministic: metrics sort by (name, label
//     set) and label keys are canonicalized at registration, so two
//     processes that did the same work expose byte-identical text
//     (modulo the values themselves).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace nbx::obs {

/// One key=value metric label. Small sets only (backend, simd_tier,
/// lanes, scheme, ...): labels multiply time series, so keep
/// cardinality tiny.
struct MetricLabel {
  std::string key;
  std::string value;

  friend bool operator==(const MetricLabel&, const MetricLabel&) = default;
};

/// Counter shards: enough slots that the handful of pool workers rarely
/// collide on a cache line, small enough that snapshot merges are free.
inline constexpr std::size_t kMetricShards = 16;

/// A monotonically increasing unsigned counter. Handles are stable
/// references into their registry — resolve once (outside the hot
/// loop), then add() is one relaxed atomic fetch_add on this thread's
/// shard.
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  void increment() noexcept { add(1); }

  /// Merged total across all shards.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class MetricsRegistry;
  MetricCounter() = default;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// A settable double (last write wins) with an exact-under-concurrency
/// add() (CAS loop). Used for point-in-time readings: queue depth,
/// arena bytes, resolved SIMD tier.
class MetricGauge {
 public:
  void set(double v) noexcept;
  void add(double v) noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  friend class MetricsRegistry;
  MetricGauge() = default;

  std::atomic<double> v_{0.0};
};

/// A log2-bucketed value histogram: bucket i holds observations in
/// [2^i, 2^(i+1)), bucket 0 also absorbs values below 2. Unit-free —
/// callers pick the unit (microseconds, bytes, lanes) and say so in the
/// metric name. Sharded like MetricCounter; quantiles are interpolated
/// from the merged buckets on snapshot.
class MetricHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void observe(double v) noexcept;

  /// Merged snapshot of one histogram.
  struct Data {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Interpolated quantile (q in [0,1]) from the log2 buckets,
    /// clamped to the observed [min, max]. 0 when empty.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Data data() const noexcept;

  /// Bucket index for a value (log2 of the whole part, clamped).
  static std::size_t bucket_of(double v) noexcept;

 private:
  friend class MetricsRegistry;
  MetricHistogram() = default;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One metric's merged state, as produced by MetricsRegistry::snapshot.
struct MetricSnapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;                  ///< sanitized Prometheus name
  std::vector<MetricLabel> labels;   ///< canonical (key-sorted) order
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;   ///< kCounter
  double gauge_value = 0.0;          ///< kGauge
  MetricHistogram::Data histogram;   ///< kHistogram
};

/// The registry: find-or-create named metrics, snapshot/export them.
/// Registration takes a lock and may allocate; the returned handles are
/// lock-free. Thread-safe throughout.
class MetricsRegistry {
 public:
  MetricsRegistry();   // out of line: Entry is incomplete here
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. `name` is sanitized to Prometheus vocabulary
  /// ([a-z0-9_:], bad characters become '_'); labels are canonicalized
  /// by key. The same (kind, name, labels) triple always returns the
  /// same handle, so instrumentation sites can re-resolve cheaply per
  /// run without double-counting.
  MetricCounter& counter(std::string_view name,
                         std::vector<MetricLabel> labels = {});
  MetricGauge& gauge(std::string_view name,
                     std::vector<MetricLabel> labels = {});
  MetricHistogram& histogram(std::string_view name,
                             std::vector<MetricLabel> labels = {});

  /// Merged state of every metric, sorted by (name, labels) — the
  /// deterministic-exposition contract.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Prometheus text exposition (one # TYPE line per metric family,
  /// histograms as cumulative le-buckets + _sum/_count). Every name
  /// gains the "nbx_" namespace prefix.
  void write_prometheus(std::ostream& os) const;

  /// One-line JSON object (no trailing newline):
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with metric
  /// keys rendered as name{k="v",...} in the same deterministic order.
  /// Suitable as one JSONL record.
  void write_json(std::ostream& os) const;

  /// write_json into a string.
  [[nodiscard]] std::string json() const;

 private:
  struct Entry;
  Entry& find_or_create(MetricSnapshot::Kind kind, std::string_view name,
                        std::vector<MetricLabel> labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// The process-wide registry hook. Null (the default) means metrics are
/// off; instrumented subsystems test this one pointer and do nothing
/// else when detached.
[[nodiscard]] MetricsRegistry* metrics() noexcept;

/// Installs (nullptr detaches) the process-wide registry. The registry
/// is borrowed, not owned; it must outlive any instrumented work that
/// runs while attached. Swap only between engine runs — handles cached
/// by in-flight work keep pointing into the old registry.
void set_metrics(MetricsRegistry* registry) noexcept;

/// RAII attach/detach for benches and tests: installs `registry` on
/// construction, restores the previous hook on destruction.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry)
      : previous_(metrics()) {
    set_metrics(registry);
  }
  ~ScopedMetricsRegistry() { set_metrics(previous_); }
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Periodic snapshot thread for long soaks: every `interval_seconds` it
/// appends one {"elapsed_seconds":...,"metrics":{...}} JSONL record to
/// `os` (flushed per record). A final record is written on stop so short
/// runs still produce at least one snapshot. The stream and registry
/// must outlive the streamer.
class SnapshotStreamer {
 public:
  SnapshotStreamer(const MetricsRegistry& registry, std::ostream& os,
                   double interval_seconds);
  ~SnapshotStreamer();
  SnapshotStreamer(const SnapshotStreamer&) = delete;
  SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

  /// Stops the thread and writes the final record. Idempotent.
  void stop();

  /// Records written so far.
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void emit();

  const MetricsRegistry& registry_;
  std::ostream& os_;
  double interval_seconds_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::thread thread_;
};

}  // namespace nbx::obs
