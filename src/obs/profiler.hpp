// profiler.hpp — per-stage wall-clock profiling for the sweep engine.
//
// A Profiler owns a set of named stages ("trial", "lane_group",
// "fold", ...). Code brackets a region with a ScopedTimer; on scope
// exit the elapsed time folds into that stage's histogram and,
// optionally, an event list for Chrome-trace export.
//
// Timing is inherently nondeterministic — it lives beside, never
// inside, the deterministic Counters. A null Profiler* is the off
// switch: ScopedTimer(nullptr, ...) never reads the clock.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace nbx::obs {

/// Log2-bucketed latency histogram plus the usual summary moments.
/// Bucket i holds durations in [2^i, 2^(i+1)) microseconds; bucket 0
/// also absorbs sub-microsecond samples.
struct DurationHistogram {
  static constexpr std::size_t kBuckets = 32;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  /// Bucket index for a duration (log2 of whole microseconds, clamped).
  static std::size_t bucket_of(double seconds);

  void add(double seconds);

  DurationHistogram& operator+=(const DurationHistogram& o);

  double mean_seconds() const {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
  }

  /// Interpolated quantile (q in [0,1]) in seconds, estimated from the
  /// log2 microsecond buckets by linear interpolation inside the bucket
  /// holding the q-th sample, clamped to the observed [min, max]. 0 when
  /// the histogram is empty.
  double quantile_seconds(double q) const;

  double p50_seconds() const { return quantile_seconds(0.50); }
  double p95_seconds() const { return quantile_seconds(0.95); }
  double p99_seconds() const { return quantile_seconds(0.99); }
};

/// One named stage and its accumulated timings.
struct StageProfile {
  std::string name;
  DurationHistogram hist;
};

/// Thread-safe stage registry + accumulator.
class Profiler {
 public:
  /// With capture_events=true every timed region is also kept as a
  /// discrete event (stage, start, duration, thread) for Chrome-trace
  /// export. Summary histograms are always maintained.
  explicit Profiler(bool capture_events = false);

  /// Index for a stage name, creating the stage on first use.
  std::size_t stage_index(std::string_view name);

  /// Folds one sample into a stage (start_seconds is relative to the
  /// profiler's construction; used only for event capture).
  void record(std::size_t stage, double start_seconds, double dur_seconds);

  /// Seconds since this profiler was constructed.
  double now_seconds() const;

  /// Snapshot of all stages (copy, taken under the lock).
  std::vector<StageProfile> stages() const;

  /// Human-readable per-stage table: count / total / mean / min / max.
  void write_summary(std::ostream& os) const;

  /// Chrome-trace JSON ({"traceEvents":[...]}): load in chrome://tracing
  /// or Perfetto. Without capture_events the event array is empty.
  void write_chrome_trace(std::ostream& os) const;

  /// Machine-readable per-stage summary, one JSON object:
  /// {"stages":[{"name":...,"count":...,"total_seconds":...,
  ///   "mean_seconds":...,"min_seconds":...,"max_seconds":...,
  ///   "p50_seconds":...,"p95_seconds":...,"p99_seconds":...},...]}
  void write_profile_json(std::ostream& os) const;

 private:
  std::uint32_t tid_of(std::thread::id id);

  struct Event {
    std::uint32_t stage;
    std::uint32_t tid;
    double start_us;
    double dur_us;
  };

  mutable std::mutex mu_;
  std::vector<StageProfile> stages_;
  std::vector<std::pair<std::thread::id, std::uint32_t>> tids_;
  std::vector<Event> events_;
  bool capture_events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII region timer. Inert (no clock read) when profiler is null.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, std::size_t stage)
      : profiler_(profiler), stage_(stage) {
    if (profiler_ != nullptr) start_ = profiler_->now_seconds();
  }
  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      profiler_->record(stage_, start_, profiler_->now_seconds() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  std::size_t stage_ = 0;
  double start_ = 0.0;
};

}  // namespace nbx::obs
