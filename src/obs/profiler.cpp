#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.hpp"

namespace nbx::obs {

std::size_t DurationHistogram::bucket_of(double seconds) {
  const double us = seconds * 1e6;
  if (us < 2.0) return 0;
  std::size_t b = 0;
  // log2 of whole microseconds; us < 2^63 always in practice.
  for (std::uint64_t v = static_cast<std::uint64_t>(us); v > 1; v >>= 1) ++b;
  return std::min(b, kBuckets - 1);
}

void DurationHistogram::add(double seconds) {
  ++buckets[bucket_of(seconds)];
  if (count == 0 || seconds < min_seconds) min_seconds = seconds;
  if (count == 0 || seconds > max_seconds) max_seconds = seconds;
  ++count;
  total_seconds += seconds;
}

DurationHistogram& DurationHistogram::operator+=(const DurationHistogram& o) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  if (o.count > 0) {
    if (count == 0 || o.min_seconds < min_seconds) min_seconds = o.min_seconds;
    if (count == 0 || o.max_seconds > max_seconds) max_seconds = o.max_seconds;
  }
  count += o.count;
  total_seconds += o.total_seconds;
  return *this;
}

double DurationHistogram::quantile_seconds(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto b = static_cast<double>(buckets[i]);
    if (b > 0.0 && cum + b >= target) {
      // Bucket i spans [2^i, 2^(i+1)) microseconds (bucket 0 starts
      // at 0); interpolate linearly within it.
      const double lo_us = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi_us = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac = (target - cum) / b;
      const double est = (lo_us + frac * (hi_us - lo_us)) * 1e-6;
      return std::clamp(est, min_seconds, max_seconds);
    }
    cum += b;
  }
  return max_seconds;
}

Profiler::Profiler(bool capture_events)
    : capture_events_(capture_events),
      epoch_(std::chrono::steady_clock::now()) {}

std::size_t Profiler::stage_index(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) return i;
  }
  stages_.push_back(StageProfile{std::string(name), {}});
  return stages_.size() - 1;
}

double Profiler::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::uint32_t Profiler::tid_of(std::thread::id id) {
  for (const auto& [tid, idx] : tids_) {
    if (tid == id) return idx;
  }
  const auto idx = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace_back(id, idx);
  return idx;
}

void Profiler::record(std::size_t stage, double start_seconds,
                      double dur_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (stage >= stages_.size()) return;
  stages_[stage].hist.add(dur_seconds);
  if (capture_events_) {
    events_.push_back(Event{static_cast<std::uint32_t>(stage),
                            tid_of(std::this_thread::get_id()),
                            start_seconds * 1e6, dur_seconds * 1e6});
  }
}

std::vector<StageProfile> Profiler::stages() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

void Profiler::write_summary(std::ostream& os) const {
  const auto snapshot = stages();
  os << "stage                 count      total_s       mean_s        "
        "min_s        max_s\n";
  for (const StageProfile& s : snapshot) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-18s %8llu %12.6f %12.9f %12.9f %12.9f\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.hist.count),
                  s.hist.total_seconds, s.hist.mean_seconds(),
                  s.hist.min_seconds, s.hist.max_seconds);
    os << line;
  }
}

void Profiler::write_profile_json(std::ostream& os) const {
  const auto snapshot = stages();
  os << "{\"stages\":[";
  bool first = true;
  for (const StageProfile& s : snapshot) {
    if (!first) os << ",";
    first = false;
    const DurationHistogram& h = s.hist;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"count\":" << h.count
       << ",\"total_seconds\":" << json_double(h.total_seconds)
       << ",\"mean_seconds\":" << json_double(h.mean_seconds())
       << ",\"min_seconds\":" << json_double(h.min_seconds)
       << ",\"max_seconds\":" << json_double(h.max_seconds)
       << ",\"p50_seconds\":" << json_double(h.p50_seconds())
       << ",\"p95_seconds\":" << json_double(h.p95_seconds())
       << ",\"p99_seconds\":" << json_double(h.p99_seconds()) << "}";
  }
  os << "]}\n";
}

void Profiler::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << json_escape(stages_[e.stage].name)
       << "\", \"cat\": \"sweep\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.tid << ", \"ts\": " << json_double(e.start_us)
       << ", \"dur\": " << json_double(e.dur_us) << "}";
  }
  os << "\n]}\n";
}

}  // namespace nbx::obs
