#include "obs/progress.hpp"

#include <cstdio>
#include <ostream>

namespace nbx::obs {

namespace {
constexpr double kMinPrintIntervalSeconds = 0.2;
}  // namespace

ProgressReporter::ProgressReporter(std::ostream& os, std::string label,
                                   std::size_t total_units,
                                   std::uint64_t trials_per_unit)
    : os_(os),
      label_(std::move(label)),
      total_(total_units),
      trials_per_unit_(trials_per_unit),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void ProgressReporter::tick(std::size_t n) {
  done_ += n;
  print(/*force=*/done_ >= total_);
}

void ProgressReporter::finish() {
  if (done_ == 0 && !printed_) return;  // never used: stay silent
  print(/*force=*/true);
  if (printed_) os_ << "\n";
}

void ProgressReporter::print(bool force) {
  const auto now = std::chrono::steady_clock::now();
  const double since_last =
      std::chrono::duration<double>(now - last_print_).count();
  if (!force && printed_ && since_last < kMinPrintIntervalSeconds) return;
  last_print_ = now;
  printed_ = true;

  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double trials_done =
      static_cast<double>(done_) * static_cast<double>(trials_per_unit_);
  const double rate = elapsed > 0.0 ? trials_done / elapsed : 0.0;
  const double remaining =
      done_ > 0 && total_ >= done_
          ? elapsed * static_cast<double>(total_ - done_) /
                static_cast<double>(done_)
          : 0.0;

  char line[160];
  std::snprintf(line, sizeof line,
                "\r%s: %zu/%zu points | %.0f trials/s | ETA %.1fs   ",
                label_.c_str(), done_, total_, rate, remaining);
  os_ << line;
  os_.flush();
}

}  // namespace nbx::obs
