#include "obs/progress.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace nbx::obs {

namespace {
constexpr double kMinPrintIntervalSeconds = 0.2;
}  // namespace

std::string format_duration(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) return "?";
  char buf[32];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    const auto m = static_cast<int>(seconds / 60.0);
    const auto s = static_cast<int>(seconds - m * 60.0);
    std::snprintf(buf, sizeof buf, "%dm%02ds", m, s);
  } else {
    const auto h = static_cast<int>(seconds / 3600.0);
    const auto m = static_cast<int>((seconds - h * 3600.0) / 60.0);
    std::snprintf(buf, sizeof buf, "%dh%02dm", h, m);
  }
  return buf;
}

ProgressReporter::ProgressReporter(std::ostream& os, std::string label,
                                   std::size_t total_units,
                                   std::uint64_t trials_per_unit)
    : os_(os),
      label_(std::move(label)),
      total_(total_units),
      trials_per_unit_(trials_per_unit),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void ProgressReporter::tick(std::size_t n) {
  done_ += n;
  print(/*force=*/done_ >= total_);
}

void ProgressReporter::finish() {
  if (done_ == 0 && !printed_) return;  // never used: stay silent
  print(/*force=*/true);
  if (printed_) os_ << "\n";
}

double ProgressReporter::fraction_done() const {
  if (total_ == 0) return 0.0;
  const double f =
      static_cast<double>(done_) / static_cast<double>(total_);
  return f > 1.0 ? 1.0 : f;
}

double ProgressReporter::eta_seconds() const {
  if (done_ == 0 || total_ <= done_) return 0.0;
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  return elapsed * static_cast<double>(total_ - done_) /
         static_cast<double>(done_);
}

void ProgressReporter::print(bool force) {
  const auto now = std::chrono::steady_clock::now();
  const double since_last =
      std::chrono::duration<double>(now - last_print_).count();
  if (!force && printed_ && since_last < kMinPrintIntervalSeconds) return;
  last_print_ = now;
  printed_ = true;

  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double trials_done =
      static_cast<double>(done_) * static_cast<double>(trials_per_unit_);
  const double rate = elapsed > 0.0 ? trials_done / elapsed : 0.0;

  char line[160];
  std::snprintf(line, sizeof line,
                "\r%s: %zu/%zu points (%3.0f%%) | %.0f trials/s | ETA %s   ",
                label_.c_str(), done_, total_, fraction_done() * 100.0, rate,
                format_duration(eta_seconds()).c_str());
  os_ << line;
  os_.flush();
}

}  // namespace nbx::obs
