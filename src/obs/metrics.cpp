#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace nbx::obs {

namespace {

/// Each thread gets a stable slot index on first use; shards are the
/// slot modulo the shard count, so the pool's handful of workers land on
/// distinct cache lines with high probability.
std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % kMetricShards;
}

void atomic_add_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::atomic<MetricsRegistry*> g_metrics{nullptr};

}  // namespace

// ----------------------------------------------------------- counters

void MetricCounter::add(std::uint64_t n) noexcept {
  shards_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t MetricCounter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

// ------------------------------------------------------------- gauges

void MetricGauge::set(double v) noexcept {
  v_.store(v, std::memory_order_relaxed);
}

void MetricGauge::add(double v) noexcept { atomic_add_double(v_, v); }

double MetricGauge::value() const noexcept {
  return v_.load(std::memory_order_relaxed);
}

// --------------------------------------------------------- histograms

std::size_t MetricHistogram::bucket_of(double v) noexcept {
  if (!(v >= 2.0)) {  // also catches NaN and negatives
    return 0;
  }
  std::size_t b = 0;
  for (auto w = static_cast<std::uint64_t>(std::min(v, 9.2e18)); w > 1;
       w >>= 1) {
    ++b;
  }
  return std::min(b, kBuckets - 1);
}

void MetricHistogram::observe(double v) noexcept {
  Shard& s = shards_[shard_slot()];
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(s.sum, v);
  // Min/max start at +/-infinity — identity elements, so every CAS is
  // correct without a first-observation special case.
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

MetricHistogram::Data MetricHistogram::data() const noexcept {
  Data d;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      d.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    d.count += s.count.load(std::memory_order_relaxed);
    d.sum += s.sum.load(std::memory_order_relaxed);
  }
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  d.min = d.count == 0 || std::isinf(mn) ? 0.0 : mn;
  d.max = d.count == 0 || std::isinf(mx) ? 0.0 : mx;
  return d;
}

double MetricHistogram::Data::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto b = static_cast<double>(buckets[i]);
    if (b > 0.0 && cum + b >= target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac = b > 0.0 ? (target - cum) / b : 0.0;
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cum += b;
  }
  return max;
}

// ----------------------------------------------------------- registry

struct MetricsRegistry::Entry {
  MetricSnapshot::Kind kind;
  std::string name;
  std::vector<MetricLabel> labels;  // canonical (key-sorted)
  MetricCounter counter;
  MetricGauge gauge;
  MetricHistogram histogram;
};

namespace {

/// Prometheus metric-name vocabulary; anything else becomes '_'.
std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void canonicalize(std::vector<MetricLabel>& labels) {
  std::stable_sort(labels.begin(), labels.end(),
                   [](const MetricLabel& a, const MetricLabel& b) {
                     return a.key < b.key;
                   });
}

/// name{k="v",...} — the deterministic series key used by both
/// exporters and the snapshot sort.
std::string series_key(const std::string& name,
                       const std::vector<MetricLabel>& labels) {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += labels[i].key;
      out += "=\"";
      out += json_escape(labels[i].value);
      out += '"';
    }
    out += '}';
  }
  return out;
}

}  // namespace

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    MetricSnapshot::Kind kind, std::string_view name,
    std::vector<MetricLabel> labels) {
  std::string clean = sanitize_name(name);
  canonicalize(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->kind == kind && e->name == clean && e->labels == labels) {
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->kind = kind;
  e->name = std::move(clean);
  e->labels = std::move(labels);
  entries_.push_back(std::move(e));
  return *entries_.back();
}

MetricCounter& MetricsRegistry::counter(std::string_view name,
                                        std::vector<MetricLabel> labels) {
  return find_or_create(MetricSnapshot::Kind::kCounter, name,
                        std::move(labels))
      .counter;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name,
                                    std::vector<MetricLabel> labels) {
  return find_or_create(MetricSnapshot::Kind::kGauge, name,
                        std::move(labels))
      .gauge;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name,
                                            std::vector<MetricLabel> labels) {
  return find_or_create(MetricSnapshot::Kind::kHistogram, name,
                        std::move(labels))
      .histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot s;
      s.name = e->name;
      s.labels = e->labels;
      s.kind = e->kind;
      switch (e->kind) {
        case MetricSnapshot::Kind::kCounter:
          s.counter_value = e->counter.value();
          break;
        case MetricSnapshot::Kind::kGauge:
          s.gauge_value = e->gauge.value();
          break;
        case MetricSnapshot::Kind::kHistogram:
          s.histogram = e->histogram.data();
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) {
                return a.name < b.name;
              }
              return series_key(a.name, a.labels) <
                     series_key(b.name, b.labels);
            });
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::vector<MetricSnapshot> snap = snapshot();
  std::string last_family;
  for (const MetricSnapshot& m : snap) {
    const std::string family = "nbx_" + m.name;
    if (family != last_family) {
      const char* type = m.kind == MetricSnapshot::Kind::kCounter
                             ? "counter"
                             : m.kind == MetricSnapshot::Kind::kGauge
                                   ? "gauge"
                                   : "histogram";
      os << "# TYPE " << family << " " << type << "\n";
      last_family = family;
    }
    const std::string key = series_key(family, m.labels);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << key << " " << m.counter_value << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << key << " " << json_double(m.gauge_value) << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        // Cumulative le-buckets over the occupied log2 range, then the
        // canonical +Inf/_sum/_count triple.
        std::size_t top = 0;
        for (std::size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
          if (m.histogram.buckets[i] != 0) {
            top = i + 1;
          }
        }
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < top; ++i) {
          cum += m.histogram.buckets[i];
          std::vector<MetricLabel> le = m.labels;
          le.push_back({"le", json_double(std::ldexp(
                                  1.0, static_cast<int>(i) + 1))});
          os << series_key(family + "_bucket", le) << " " << cum << "\n";
        }
        std::vector<MetricLabel> inf = m.labels;
        inf.push_back({"le", "+Inf"});
        os << series_key(family + "_bucket", inf) << " "
           << m.histogram.count << "\n";
        os << series_key(family + "_sum", m.labels) << " "
           << json_double(m.histogram.sum) << "\n";
        os << series_key(family + "_count", m.labels) << " "
           << m.histogram.count << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::vector<MetricSnapshot> snap = snapshot();
  const auto write_group = [&](MetricSnapshot::Kind kind, const char* title,
                               bool first_group) {
    if (!first_group) {
      os << ",";
    }
    os << "\"" << title << "\":{";
    bool first = true;
    for (const MetricSnapshot& m : snap) {
      if (m.kind != kind) {
        continue;
      }
      if (!first) {
        os << ",";
      }
      first = false;
      os << "\"" << json_escape(series_key(m.name, m.labels)) << "\":";
      switch (kind) {
        case MetricSnapshot::Kind::kCounter:
          os << m.counter_value;
          break;
        case MetricSnapshot::Kind::kGauge:
          os << json_double(m.gauge_value);
          break;
        case MetricSnapshot::Kind::kHistogram: {
          const MetricHistogram::Data& h = m.histogram;
          os << "{\"count\":" << h.count << ",\"sum\":" << json_double(h.sum)
             << ",\"min\":" << json_double(h.min)
             << ",\"max\":" << json_double(h.max)
             << ",\"p50\":" << json_double(h.quantile(0.50))
             << ",\"p95\":" << json_double(h.quantile(0.95))
             << ",\"p99\":" << json_double(h.quantile(0.99)) << "}";
          break;
        }
      }
    }
    os << "}";
  };
  os << "{";
  write_group(MetricSnapshot::Kind::kCounter, "counters", true);
  write_group(MetricSnapshot::Kind::kGauge, "gauges", false);
  write_group(MetricSnapshot::Kind::kHistogram, "histograms", false);
  os << "}";
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

// ------------------------------------------------- process-wide hook

MetricsRegistry* metrics() noexcept {
  return g_metrics.load(std::memory_order_acquire);
}

void set_metrics(MetricsRegistry* registry) noexcept {
  g_metrics.store(registry, std::memory_order_release);
}

// --------------------------------------------------------- streaming

SnapshotStreamer::SnapshotStreamer(const MetricsRegistry& registry,
                                   std::ostream& os, double interval_seconds)
    : registry_(registry),
      os_(os),
      interval_seconds_(std::max(interval_seconds, 0.01)),
      start_(std::chrono::steady_clock::now()),
      thread_([this] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
          cv_.wait_for(
              lock, std::chrono::duration<double>(interval_seconds_),
              [this] { return stop_; });
          if (stop_) {
            break;
          }
          lock.unlock();
          emit();
          lock.lock();
        }
      }) {}

SnapshotStreamer::~SnapshotStreamer() { stop(); }

void SnapshotStreamer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stop_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  thread_.join();
  emit();  // final record: short runs still get one snapshot
}

void SnapshotStreamer::emit() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  std::ostringstream line;
  line << "{\"elapsed_seconds\":" << json_double(elapsed) << ",\"metrics\":";
  registry_.write_json(line);
  line << "}\n";
  os_ << line.str();
  os_.flush();
  written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace nbx::obs
