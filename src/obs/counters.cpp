#include "obs/counters.hpp"

#include <ostream>
#include <sstream>

namespace nbx::obs {

std::string_view code_layer_name(CodeLayer layer) {
  switch (layer) {
    case CodeLayer::kHamming: return "hamming";
    case CodeLayer::kHsiao: return "hsiao";
    case CodeLayer::kRs: return "rs";
    case CodeLayer::kTmr: return "tmr";
    case CodeLayer::kParity: return "parity";
  }
  return "?";
}

void write_counters_json(std::ostream& os, const Counters& c) {
  os << "{\"injection\":{\"masks_generated\":" << c.injection.masks_generated
     << ",\"faults_injected\":" << c.injection.faults_injected << "}";
  os << ",\"code\":{";
  bool first = true;
  for (const CodeLayer layer : kAllCodeLayers) {
    const CodeLayerCounters& l = c.at(layer);
    if (!first) os << ",";
    first = false;
    os << "\"" << code_layer_name(layer) << "\":{\"reads\":" << l.reads
       << ",\"clean\":" << l.clean << ",\"corrected\":" << l.corrected
       << ",\"miscorrected\":" << l.miscorrected
       << ",\"detected_uncorrectable\":" << l.detected_uncorrectable
       << ",\"false_positive\":" << l.false_positive
       << ",\"undetected\":" << l.undetected << "}";
  }
  os << "}";
  os << ",\"module\":{\"votes\":" << c.module_level.votes
     << ",\"copies_outvoted\":" << c.module_level.copies_outvoted
     << ",\"voter_self_faults\":" << c.module_level.voter_self_faults
     << ",\"storage_faults\":" << c.module_level.storage_faults << "}";
  os << ",\"e2e\":{\"instructions\":" << c.end_to_end.instructions
     << ",\"correct\":" << c.end_to_end.correct
     << ",\"silent_corruptions\":" << c.end_to_end.silent_corruptions
     << ",\"caught_errors\":" << c.end_to_end.caught_errors
     << ",\"false_alarms\":" << c.end_to_end.false_alarms << "}";
  os << ",\"scenario\":{\"scheduled_trials\":"
     << c.scenario.scheduled_trials
     << ",\"wear_adjusted_trials\":" << c.scenario.wear_adjusted_trials
     << ",\"burst_strikes\":" << c.scenario.burst_strikes << "}}";
}

std::string counters_json(const Counters& c) {
  std::ostringstream os;
  write_counters_json(os, c);
  return os.str();
}

std::string_view pipeline_stage_label(std::size_t i) {
  switch (i) {
    case 0: return "fetch";
    case 1: return "decode";
    case 2: return "execute";
    case 3: return "writeback";
    default: return "?";
  }
}

void write_pipeline_counters_json(std::ostream& os,
                                  const PipelineCounters& c) {
  os << "{\"cycles\":" << c.cycles << ",\"retired\":" << c.retired
     << ",\"stalls\":" << c.stalls << ",\"bubbles\":" << c.bubbles
     << ",\"forwards\":" << c.forwards << ",\"flushes\":" << c.flushes
     << ",\"stage\":{";
  for (std::size_t i = 0; i < kPipelineStageCount; ++i) {
    if (i != 0) os << ",";
    os << "\"" << pipeline_stage_label(i) << "\":{\"ops\":" << c.stage[i].ops
       << ",\"bit_faults\":" << c.stage[i].bit_faults << "}";
  }
  os << "}}";
}

std::string pipeline_counters_json(const PipelineCounters& c) {
  std::ostringstream os;
  write_pipeline_counters_json(os, c);
  return os.str();
}

}  // namespace nbx::obs

