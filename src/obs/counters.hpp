// counters.hpp — the fault-anatomy counter set.
//
// One `Counters` object tallies, for a batch of simulated instructions,
// what happened to every injected fault at every layer of the stack:
//
//   injection    — how many masks were generated, how many bits flipped.
//   code[layer]  — per coded-storage read: did the code see a clean
//                  word, genuinely correct the damage, miscorrect it,
//                  detect-without-repair, fire a false-positive
//                  "correction" on an undamaged bit, or miss the damage
//                  entirely (undetected)?
//   module_level — module-redundancy events: majority votes taken,
//                  replica copies outvoted, voter-self-fault escapes
//                  (voted output differs from the clean majority of its
//                  inputs), time-redundancy storage faults.
//   end_to_end   — per instruction: clean-correct, silently corrupted,
//                  caught (wrong but flagged), or false-alarmed.
//
// Contracts the sweep engine relies on:
//   * Counters hold only unsigned integers and merge with operator+=.
//     Integer addition is associative and commutative, so any per-
//     thread / per-lane accumulation schedule folds to bit-identical
//     totals — determinism across threads and batch_lanes comes free.
//   * Accounting never draws from the trial RNG and never perturbs the
//     simulation; attaching a sink cannot move a pinned golden.
//   * A null sink pointer is the off switch: every hook is guarded by
//     one pointer test, so the cost when detached is unmeasurable.
//
// Classification is defined against the *golden* (fault-free) content,
// which the simulator always has on hand — "corrected" means the read
// returned the golden value despite damage, not merely that the decoder
// claimed success. See docs/OBSERVABILITY.md for the full semantics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace nbx::obs {

/// Which ECC/redundancy scheme a coded read went through.
enum class CodeLayer : std::uint8_t {
  kHamming = 0,  // naive + ideal Hamming(12,8) LUT protection
  kHsiao,        // Hsiao SEC-DED(13,8)
  kRs,           // Reed-Solomon over GF(16)
  kTmr,          // bit-level LUT triplication
  kParity,       // even-parity detect-only words
};

inline constexpr std::size_t kCodeLayerCount = 5;

inline constexpr std::array<CodeLayer, kCodeLayerCount> kAllCodeLayers = {
    CodeLayer::kHamming, CodeLayer::kHsiao, CodeLayer::kRs, CodeLayer::kTmr,
    CodeLayer::kParity};

/// Stable lower-case name ("hamming", "hsiao", ...) used as JSON keys.
std::string_view code_layer_name(CodeLayer layer);

/// What one coded read did with the fault mask it saw. Every read lands
/// in exactly one outcome bucket, so the buckets sum to `reads`.
struct CodeLayerCounters {
  std::uint64_t reads = 0;    // coded reads observed (sum of the below)
  std::uint64_t clean = 0;    // no mask bit touched the read's sites
  std::uint64_t corrected = 0;              // repaired back to golden
  std::uint64_t miscorrected = 0;           // "corrected" to a wrong value
  std::uint64_t detected_uncorrectable = 0;  // flagged, not repaired
  std::uint64_t false_positive = 0;  // undamaged bit toggled by decoder
  std::uint64_t undetected = 0;      // damage on sites, syndrome silent

  CodeLayerCounters& operator+=(const CodeLayerCounters& o) {
    reads += o.reads;
    clean += o.clean;
    corrected += o.corrected;
    miscorrected += o.miscorrected;
    detected_uncorrectable += o.detected_uncorrectable;
    false_positive += o.false_positive;
    undetected += o.undetected;
    return *this;
  }
  friend bool operator==(const CodeLayerCounters&,
                         const CodeLayerCounters&) = default;
};

/// Module-redundancy (voting / time-redundancy) events.
struct ModuleLayerCounters {
  std::uint64_t votes = 0;            // majority votes performed
  std::uint64_t copies_outvoted = 0;  // replica inputs that lost a vote
  std::uint64_t voter_self_faults = 0;  // voted output != clean majority
  std::uint64_t storage_faults = 0;   // time-redundancy storage bits hit

  ModuleLayerCounters& operator+=(const ModuleLayerCounters& o) {
    votes += o.votes;
    copies_outvoted += o.copies_outvoted;
    voter_self_faults += o.voter_self_faults;
    storage_faults += o.storage_faults;
    return *this;
  }
  friend bool operator==(const ModuleLayerCounters&,
                         const ModuleLayerCounters&) = default;
};

/// Fault-injection volume, as produced by MaskGenerator.
struct InjectionCounters {
  std::uint64_t masks_generated = 0;  // one per simulated instruction
  std::uint64_t faults_injected = 0;  // total mask bits set

  InjectionCounters& operator+=(const InjectionCounters& o) {
    masks_generated += o.masks_generated;
    faults_injected += o.faults_injected;
    return *this;
  }
  friend bool operator==(const InjectionCounters&,
                         const InjectionCounters&) = default;
};

/// Per-instruction outcome after every layer has had its say. An
/// instruction is *flagged* when the ALU reports a voter disagreement
/// or an invalid result. The four buckets sum to `instructions`.
struct EndToEndCounters {
  std::uint64_t instructions = 0;
  std::uint64_t correct = 0;             // right answer, no flag
  std::uint64_t silent_corruptions = 0;  // wrong answer, no flag
  std::uint64_t caught_errors = 0;       // wrong answer, flagged
  std::uint64_t false_alarms = 0;        // right answer, flagged

  EndToEndCounters& operator+=(const EndToEndCounters& o) {
    instructions += o.instructions;
    correct += o.correct;
    silent_corruptions += o.silent_corruptions;
    caught_errors += o.caught_errors;
    false_alarms += o.false_alarms;
    return *this;
  }
  friend bool operator==(const EndToEndCounters&,
                         const EndToEndCounters&) = default;
};

/// FaultScenario attribution (fault/scenario.hpp): how much of the
/// injected volume came from the correlated/aging overlays rather than
/// the paper's i.i.d. model. Accounted by the sweep backends from the
/// trial coordinates alone (pure arithmetic, no RNG), so scalar and wide
/// totals are bit-identical by construction.
struct ScenarioCounters {
  std::uint64_t scheduled_trials = 0;  // trials under a non-identity
                                       // rate schedule
  std::uint64_t wear_adjusted_trials = 0;  // trials whose effective rate
                                           // differed from the base rate
  std::uint64_t burst_strikes = 0;  // correlated strikes delivered

  ScenarioCounters& operator+=(const ScenarioCounters& o) {
    scheduled_trials += o.scheduled_trials;
    wear_adjusted_trials += o.wear_adjusted_trials;
    burst_strikes += o.burst_strikes;
    return *this;
  }
  friend bool operator==(const ScenarioCounters&,
                         const ScenarioCounters&) = default;
};

/// The full anatomy for one accumulation scope (a trial, a lane group,
/// a data point, a whole sweep — merge scopes with +=).
struct Counters {
  InjectionCounters injection;
  std::array<CodeLayerCounters, kCodeLayerCount> code;
  ModuleLayerCounters module_level;
  EndToEndCounters end_to_end;
  ScenarioCounters scenario;

  CodeLayerCounters& at(CodeLayer layer) {
    return code[static_cast<std::size_t>(layer)];
  }
  const CodeLayerCounters& at(CodeLayer layer) const {
    return code[static_cast<std::size_t>(layer)];
  }

  Counters& operator+=(const Counters& o) {
    injection += o.injection;
    for (std::size_t i = 0; i < kCodeLayerCount; ++i) code[i] += o.code[i];
    module_level += o.module_level;
    end_to_end += o.end_to_end;
    scenario += o.scenario;
    return *this;
  }
  friend bool operator==(const Counters&, const Counters&) = default;

  void reset() { *this = Counters{}; }
};

/// Writes one Counters as a single-line JSON object (no newline):
/// {"injection":{...},"code":{"hamming":{...},...},"module":{...},
///  "e2e":{...},"scenario":{...}}. Suitable both for embedding in a
/// larger document and as one JSONL record.
void write_counters_json(std::ostream& os, const Counters& c);

/// Convenience: write_counters_json into a string.
std::string counters_json(const Counters& c);

// ----------------------------------------------------------------------
// Pipelined-cell anatomy (src/cell/pipeline). A separate top-level
// counter set rather than a Counters member: the ALU-sweep anatomy JSON
// and its differential tests are pinned, and pipeline events only exist
// where a cell runs a program.

/// Stage index space of the cell pipeline, in program order
/// (fetch=0, decode=1, execute=2, writeback=3 — cell/pipeline/
/// pipeline_config.hpp owns the enum; obs stays cell-agnostic).
inline constexpr std::size_t kPipelineStageCount = 4;

/// Stable stage name for index `i` ("fetch", "decode", "execute",
/// "writeback") used as JSON keys and metric labels.
std::string_view pipeline_stage_label(std::size_t i);

/// Per-stage tallies.
struct PipelineStageCounters {
  std::uint64_t ops = 0;         // instructions that used the stage
  std::uint64_t bit_faults = 0;  // injected flips seen at the stage
                                 // (transient + defect-forced)

  PipelineStageCounters& operator+=(const PipelineStageCounters& o) {
    ops += o.ops;
    bit_faults += o.bit_faults;
    return *this;
  }
  friend bool operator==(const PipelineStageCounters&,
                         const PipelineStageCounters&) = default;
};

/// Anatomy of one pipelined program run (merge runs with +=).
struct PipelineCounters {
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;   // instructions that committed a result
  std::uint64_t stalls = 0;    // decode held for a RAW hazard
  std::uint64_t bubbles = 0;   // empty execute slots
  std::uint64_t forwards = 0;  // EX/WB value forwarded to decode
  std::uint64_t flushes = 0;   // instructions squashed on misdecode
  std::array<PipelineStageCounters, kPipelineStageCount> stage{};

  PipelineStageCounters& at(std::size_t i) { return stage[i]; }
  const PipelineStageCounters& at(std::size_t i) const { return stage[i]; }

  PipelineCounters& operator+=(const PipelineCounters& o) {
    cycles += o.cycles;
    retired += o.retired;
    stalls += o.stalls;
    bubbles += o.bubbles;
    forwards += o.forwards;
    flushes += o.flushes;
    for (std::size_t i = 0; i < kPipelineStageCount; ++i) {
      stage[i] += o.stage[i];
    }
    return *this;
  }
  friend bool operator==(const PipelineCounters&,
                         const PipelineCounters&) = default;

  void reset() { *this = PipelineCounters{}; }
};

/// Writes one PipelineCounters as a single-line JSON object:
/// {"cycles":...,"retired":...,...,"stage":{"fetch":{...},...}}.
void write_pipeline_counters_json(std::ostream& os,
                                  const PipelineCounters& c);

/// Convenience: write_pipeline_counters_json into a string.
std::string pipeline_counters_json(const PipelineCounters& c);

}  // namespace nbx::obs
