#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace nbx {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Shortest round-trippable decimal form; always valid JSON (to_chars
  // never emits a leading '+' or a bare '.').
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, end) : "null";
}

}  // namespace nbx
