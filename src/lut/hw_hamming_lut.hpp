// hw_hamming_lut.hpp — Figure 1(b) in gates: the Hamming-coded lookup
// table with its check-bit generator, error detector and error corrector
// synthesized into a netlist.
//
// "Whenever the lookup table is accessed, the truth table bits are fed
// into the check bit generator, which recalculates the check bits. These
// newly calculated check bits are then compared with the stored check
// bits in the error detector. The results of the error detector are fed
// into the error corrector, which makes changes to any flipped bits in
// the function output." (§2.1, Figure 1b)
//
// Circuit structure for Hamming(21,16):
//   * address decode:       4 inverters + 16 minterm AND4s
//   * data output mux:      16 AND2 + 1 OR16
//   * check-bit generator:  5 XOR trees over the stored data bits
//   * error detector:       5 XOR2 (recomputed vs stored checks)
//   * error corrector:      addressed-position encoder (5 ORn over the
//                           minterms), syndrome comparator (5 XNOR +
//                           1 AND5), and the output-correction XOR
//
// This is the *ideal* SEC correction rule in hardware — the corrector
// flips the output only when the syndrome equals the addressed data
// bit's codeword position — with every gate in the pipeline being a
// fault-injection site. It completes the decoder-model triad:
//   CodedLut(kHamming)      behavioural, paper's naive corrector
//   CodedLut(kHammingIdeal) behavioural, ideal corrector
//   HwHammingLut            gate-level ideal corrector, faultable logic
#pragma once

#include <cstdint>

#include "coding/hamming.hpp"
#include "common/bitvec.hpp"
#include "fault/mask_view.hpp"
#include "gatesim/netlist.hpp"

namespace nbx {

/// Gate-level Hamming(21,16) coded 4-input LUT.
class HwHammingLut {
 public:
  /// `tt` must be 16 bits; check bits are derived at build time.
  explicit HwHammingLut(BitVec tt);

  /// Stored cells: 16 data + 5 check bits.
  [[nodiscard]] std::size_t storage_sites() const { return 21; }

  /// Gate nodes of decode + generator + detector + corrector.
  [[nodiscard]] std::size_t logic_sites() const {
    return net_.node_count();
  }

  /// Total sites; layout [0,21) storage, [21, ...) logic nodes.
  [[nodiscard]] std::size_t fault_sites() const {
    return storage_sites() + logic_sites();
  }

  /// Reads the (corrected) LUT output under a combined fault overlay.
  [[nodiscard]] bool read(std::uint32_t addr, MaskView mask) const;

  [[nodiscard]] const Netlist& netlist() const { return net_; }
  [[nodiscard]] const BitVec& golden_table() const { return tt_; }
  [[nodiscard]] const BitVec& golden_checks() const { return checks_; }

 private:
  BitVec tt_;
  BitVec checks_;
  HammingCode code_{16};
  Netlist net_;
  Signal out_;  // corrected function output
};

}  // namespace nbx
