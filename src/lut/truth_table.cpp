#include "lut/truth_table.hpp"

#include <cassert>

#include "coding/majority.hpp"

namespace nbx {

BitVec build_truth_table(int k, const std::function<bool(std::uint32_t)>& f) {
  assert(k >= 1 && k <= kMaxLutInputs);
  const std::size_t n = std::size_t{1} << k;
  BitVec tt(n);
  for (std::uint32_t in = 0; in < n; ++in) {
    tt.set(in, f(in));
  }
  return tt;
}

BitVec tt_and2(int k) {
  return build_truth_table(
      k, [](std::uint32_t in) { return (in & 1u) && (in & 2u); });
}

BitVec tt_or2(int k) {
  return build_truth_table(
      k, [](std::uint32_t in) { return (in & 1u) || (in & 2u); });
}

BitVec tt_xor2(int k) {
  return build_truth_table(k, [](std::uint32_t in) {
    return static_cast<bool>((in ^ (in >> 1)) & 1u);
  });
}

BitVec tt_majority3(int k) {
  return build_truth_table(k, [](std::uint32_t in) {
    return majority3((in & 1u) != 0, (in & 2u) != 0, (in & 4u) != 0);
  });
}

}  // namespace nbx
