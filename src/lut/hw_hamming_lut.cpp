#include "lut/hw_hamming_lut.hpp"

#include <array>
#include <cassert>
#include <string>
#include <vector>

namespace nbx {

HwHammingLut::HwHammingLut(BitVec tt) : tt_(std::move(tt)) {
  assert(tt_.size() == 16);
  checks_ = code_.generate_check_bits(tt_);

  // Inputs 0..3: address; 4..19: stored data bits; 20..24: stored checks.
  std::array<Signal, 4> a;
  for (int i = 0; i < 4; ++i) {
    a[i] = net_.add_input("a" + std::to_string(i));
  }
  std::array<Signal, 16> data;
  for (int i = 0; i < 16; ++i) {
    data[static_cast<std::size_t>(i)] =
        net_.add_input("d" + std::to_string(i));
  }
  std::array<Signal, 5> stored_check;
  for (int i = 0; i < 5; ++i) {
    stored_check[static_cast<std::size_t>(i)] =
        net_.add_input("c" + std::to_string(i));
  }

  // Address decode.
  std::array<Signal, 4> na;
  for (int i = 0; i < 4; ++i) {
    na[i] = net_.not1(a[i], "na" + std::to_string(i));
  }
  std::array<Signal, 16> minterm;
  for (int m = 0; m < 16; ++m) {
    std::vector<Signal> fanin;
    for (int i = 0; i < 4; ++i) {
      fanin.push_back((m >> i) & 1 ? a[i] : na[i]);
    }
    minterm[static_cast<std::size_t>(m)] =
        net_.add_gate(GateOp::kAndN, fanin, "mt" + std::to_string(m));
  }

  // Data output mux (the raw, possibly faulty addressed bit).
  std::vector<Signal> mux_terms;
  for (int m = 0; m < 16; ++m) {
    mux_terms.push_back(net_.and2(minterm[static_cast<std::size_t>(m)],
                                  data[static_cast<std::size_t>(m)],
                                  "md" + std::to_string(m)));
  }
  const Signal raw_out = net_.add_gate(GateOp::kOrN, mux_terms, "raw");

  // Check-bit generator: recompute check i as the XOR of the data bits
  // whose codeword position has bit i set (one wide XOR gate per group —
  // a balanced XOR tree in silicon, one fault site here as with the
  // voter's wide OR).
  std::array<Signal, 5> recomputed;
  for (int i = 0; i < 5; ++i) {
    std::vector<Signal> members;
    for (int d = 0; d < 16; ++d) {
      if (code_.position_of_data(static_cast<std::size_t>(d)) &
          (1u << i)) {
        members.push_back(data[static_cast<std::size_t>(d)]);
      }
    }
    recomputed[static_cast<std::size_t>(i)] =
        net_.add_gate(GateOp::kXorN, members, "gen" + std::to_string(i));
  }

  // Error detector: syndrome = recomputed XOR stored.
  std::array<Signal, 5> syndrome;
  for (int i = 0; i < 5; ++i) {
    syndrome[static_cast<std::size_t>(i)] =
        net_.xor2(recomputed[static_cast<std::size_t>(i)],
                  stored_check[static_cast<std::size_t>(i)],
                  "syn" + std::to_string(i));
  }

  // Error corrector. The addressed data bit's codeword position, bit by
  // bit, as an OR over the minterms whose position has that bit set.
  std::array<Signal, 5> pos;
  for (int i = 0; i < 5; ++i) {
    std::vector<Signal> members;
    for (int d = 0; d < 16; ++d) {
      if (code_.position_of_data(static_cast<std::size_t>(d)) &
          (1u << i)) {
        members.push_back(minterm[static_cast<std::size_t>(d)]);
      }
    }
    pos[static_cast<std::size_t>(i)] = members.size() == 1
        ? net_.buf(members[0], "pos" + std::to_string(i))
        : net_.add_gate(GateOp::kOrN, members, "pos" + std::to_string(i));
  }
  // match = AND over XNOR(syndrome_i, pos_i).
  std::vector<Signal> eq;
  for (int i = 0; i < 5; ++i) {
    const Signal x = net_.xor2(syndrome[static_cast<std::size_t>(i)],
                               pos[static_cast<std::size_t>(i)],
                               "neq" + std::to_string(i));
    eq.push_back(net_.not1(x, "eq" + std::to_string(i)));
  }
  const Signal match = net_.add_gate(GateOp::kAndN, eq, "match");
  // Corrected output: flip the raw addressed bit when the syndrome
  // points exactly at it.
  out_ = net_.xor2(raw_out, match, "out");
}

bool HwHammingLut::read(std::uint32_t addr, MaskView mask) const {
  assert(addr < 16);
  assert(mask.is_null() || mask.size() == fault_sites());
  std::uint64_t inputs = addr & 0xF;
  for (std::size_t i = 0; i < 16; ++i) {
    const bool stored = tt_.get(i) ^ mask.get(i);
    if (stored) {
      inputs |= std::uint64_t{1} << (4 + i);
    }
  }
  for (std::size_t i = 0; i < 5; ++i) {
    const bool stored = checks_.get(i) ^ mask.get(16 + i);
    if (stored) {
      inputs |= std::uint64_t{1} << (20 + i);
    }
  }
  const MaskView logic_mask =
      mask.is_null() ? MaskView{} : mask.subview(21, logic_sites());
  const auto nodes = net_.evaluate(inputs, logic_mask);
  return net_.value_of(out_, inputs, nodes);
}

}  // namespace nbx
