// truth_table.hpp — construction of LUT truth-table bit strings.
//
// A K-input lookup table stores the 2^K outputs of a boolean function as a
// bit string indexed by the input vector (paper Figure 1). These helpers
// build such strings from C++ callables so higher layers never hand-write
// bit patterns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/bitvec.hpp"

namespace nbx {

/// Maximum LUT fan-in supported by the simulator. The paper's example and
/// all NanoBox ALU tables are 4-input (16-bit) LUTs; 6 covers extensions.
inline constexpr int kMaxLutInputs = 6;

/// Builds the 2^k-bit truth table of `f`, where `f` receives the input
/// vector as an integer whose bit i is input i.
BitVec build_truth_table(int k, const std::function<bool(std::uint32_t)>& f);

/// Truth table of a 2-input AND padded into a k-input LUT (extra inputs
/// are don't-cares that do not affect the output).
BitVec tt_and2(int k);
/// 2-input OR padded into a k-input LUT.
BitVec tt_or2(int k);
/// 2-input XOR padded into a k-input LUT.
BitVec tt_xor2(int k);
/// 3-input majority (inputs 0,1,2) padded into a k-input LUT.
BitVec tt_majority3(int k);

}  // namespace nbx
