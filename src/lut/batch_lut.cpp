#include "lut/batch_lut.hpp"

#include <bit>
#include <cassert>

#include "obs/counters.hpp"

namespace nbx {

namespace {

// Largest mux tree: max(2^kMaxLutInputs, 2^r) leaves. For k <= 6 data
// widths the Hamming code needs r <= 7 check bits, so 128 covers both.
constexpr std::size_t kMuxLeavesMax = 128;

/// Shannon mux tree over lane words: reduces 2^k leaves to one word, one
/// address bit per level (sel[0] = LSB first). Lane L of the result is
/// leaf(a_L) where a_L is lane L's address. `leaf(i)` supplies leaf i's
/// lane word on demand so callers can fuse the fault XOR into the load.
template <class Leaf>
std::uint64_t lane_mux(std::size_t k, const std::uint64_t* sel,
                       Leaf&& leaf) {
  if (k == 0) {
    return leaf(std::size_t{0});
  }
  assert((std::size_t{1} << k) <= kMuxLeavesMax);
  std::uint64_t buf[kMuxLeavesMax / 2];
  std::size_t half = std::size_t{1} << (k - 1);
  for (std::size_t i = 0; i < half; ++i) {
    buf[i] = lane_blend(leaf(2 * i), leaf(2 * i + 1), sel[0]);
  }
  for (std::size_t level = 1; level < k; ++level) {
    half >>= 1;
    for (std::size_t i = 0; i < half; ++i) {
      buf[i] = lane_blend(buf[2 * i], buf[2 * i + 1], sel[level]);
    }
  }
  return buf[0];
}

inline std::uint64_t popcnt(std::uint64_t w) {
  return static_cast<std::uint64_t>(std::popcount(w));
}

}  // namespace

BatchLut::BatchLut(const CodedLut& lut)
    : lut_(&lut), coding_(lut.coding()), k_(lut.inputs()),
      n_(lut.table_bits()), sites_(lut.fault_sites()) {
  const BitVec& tt = lut.golden_table();
  golden_.resize(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    golden_[s] = lane_broadcast(tt.get(s));
  }
  if (coding_ != LutCoding::kHamming &&
      coding_ != LutCoding::kHammingIdeal) {
    return;
  }
  // The golden stored string is a codeword, so the syndrome of the
  // faulted string is a function of the mask alone: syndrome bit j is
  // the XOR of the mask bits in check group j. Precompute those site
  // lists plus the mux leaves that map lane addresses to codeword
  // positions and lane syndromes to the data/non-data classification.
  const HammingCode code(n_);
  r_ = code.check_bits();
  syndrome_sites_.resize(r_);
  for (std::size_t d = 0; d < n_; ++d) {
    const std::uint32_t p = code.position_of_data(d);
    for (std::size_t j = 0; j < r_; ++j) {
      if (p & (1u << j)) {
        syndrome_sites_[j].push_back(static_cast<std::uint32_t>(d));
      }
    }
  }
  for (std::size_t j = 0; j < r_; ++j) {
    syndrome_sites_[j].push_back(static_cast<std::uint32_t>(n_ + j));
  }
  pos_leaves_.assign(r_, std::vector<std::uint64_t>(n_));
  for (std::size_t a = 0; a < n_; ++a) {
    const std::uint32_t p = code.position_of_data(a);
    for (std::size_t j = 0; j < r_; ++j) {
      pos_leaves_[j][a] = lane_broadcast((p >> j) & 1u);
    }
  }
  const std::size_t cw = code.codeword_bits();
  is_data_leaves_.resize(std::size_t{1} << r_);
  for (std::size_t s = 0; s < is_data_leaves_.size(); ++s) {
    // Mirrors HammingCode::decode: a data position is a nonzero
    // in-codeword syndrome that is not a power of two (check position).
    is_data_leaves_[s] =
        lane_broadcast(s >= 1 && s <= cw && !std::has_single_bit(s));
  }
}

std::uint64_t BatchLut::read(const std::uint64_t* addr_bits,
                             const BatchBitVec* mask, std::size_t offset,
                             std::uint64_t active,
                             LutAccessStats* stats) const {
  assert(mask == nullptr || offset + sites_ <= mask->sites());
  if (mask == nullptr) {
    // Fault-free: every coding degenerates to the golden table lookup
    // with no decoder events (the scalar read with a null MaskView).
    if (stats != nullptr) {
      stats->accesses += popcnt(active);
      if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
        oc->reads += popcnt(active);
        oc->clean += popcnt(active);
      }
    }
    return lane_mux(static_cast<std::size_t>(k_), addr_bits,
                    [this](std::size_t s) { return golden_[s]; });
  }
  switch (coding_) {
    case LutCoding::kNone:
      if (stats != nullptr) {
        stats->accesses += popcnt(active);
      }
      return lane_mux(static_cast<std::size_t>(k_), addr_bits,
                      [this, mask, offset](std::size_t s) {
                        return golden_[s] ^ mask->word(offset + s);
                      });
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      return read_tmr(addr_bits, mask, offset, active, stats);
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
      return read_hamming(addr_bits, mask, offset, active, stats);
    case LutCoding::kHsiao:
    case LutCoding::kReedSolomon:
      return read_fallback(addr_bits, mask, offset, active, stats);
  }
  return 0;
}

std::size_t BatchLut::tmr_site(std::size_t copy, std::size_t entry) const {
  if (coding_ == LutCoding::kTmrInterleaved) {
    return entry * 3 + copy;
  }
  return copy * n_ + entry;
}

std::uint64_t BatchLut::read_tmr(const std::uint64_t* addr_bits,
                                 const BatchBitVec* mask,
                                 std::size_t offset, std::uint64_t active,
                                 LutAccessStats* stats) const {
  const auto k = static_cast<std::size_t>(k_);
  std::uint64_t copies[3];
  for (std::size_t c = 0; c < 3; ++c) {
    copies[c] = lane_mux(k, addr_bits,
                         [this, mask, offset, c](std::size_t s) {
                           return golden_[s] ^
                                  mask->word(offset + tmr_site(c, s));
                         });
  }
  const std::uint64_t voted = (copies[0] & copies[1]) |
                              (copies[1] & copies[2]) |
                              (copies[0] & copies[2]);
  if (stats != nullptr) {
    stats->accesses += popcnt(active);
    const std::uint64_t disagree =
        (copies[0] ^ copies[1]) | (copies[1] ^ copies[2]);
    stats->tmr_disagreements += popcnt(disagree & active);
    if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
      // Lane-sliced version of the scalar classification: compare the
      // copies and the vote against the golden addressed bit.
      const std::uint64_t g = lane_mux(
          k, addr_bits, [this](std::size_t s) { return golden_[s]; });
      const std::uint64_t err =
          (copies[0] ^ g) | (copies[1] ^ g) | (copies[2] ^ g);
      const std::uint64_t wrong = voted ^ g;
      oc->reads += popcnt(active);
      oc->clean += popcnt(active & ~err);
      oc->corrected += popcnt(active & err & ~wrong);
      oc->miscorrected += popcnt(active & wrong);
    }
  }
  return voted;
}

std::uint64_t BatchLut::read_hamming(const std::uint64_t* addr_bits,
                                     const BatchBitVec* mask,
                                     std::size_t offset,
                                     std::uint64_t active,
                                     LutAccessStats* stats) const {
  const auto k = static_cast<std::size_t>(k_);
  // The addressed data bit as the faulted string stores it.
  const std::uint64_t faulted =
      lane_mux(k, addr_bits, [this, mask, offset](std::size_t s) {
        return golden_[s] ^ mask->word(offset + s);
      });
  // Lane-sliced syndrome: bit j per lane = XOR of that lane's mask bits
  // over check group j (data members plus stored check bit j).
  std::uint64_t syn[8] = {};
  assert(r_ <= 8);
  std::uint64_t any = 0;
  for (std::size_t j = 0; j < r_; ++j) {
    std::uint64_t s = 0;
    for (const std::uint32_t site : syndrome_sites_[j]) {
      s ^= mask->word(offset + site);
    }
    syn[j] = s;
    any |= s;
  }
  // Lanes whose syndrome equals the addressed position: the corrector
  // repairs (or miscorrects) exactly the bit this access reads.
  std::uint64_t eq = ~std::uint64_t{0};
  for (std::size_t j = 0; j < r_; ++j) {
    const std::uint64_t pos_j =
        lane_mux(k, addr_bits, [this, j](std::size_t a) {
          return pos_leaves_[j][a];
        });
    eq &= ~(syn[j] ^ pos_j);
  }
  // Classify each lane's syndrome: does it name a data position? The
  // syndrome words themselves drive a mux over the 2^r constant leaves.
  const std::uint64_t is_data = lane_mux(
      r_, syn, [this](std::size_t s) { return is_data_leaves_[s]; });
  obs::CodeLayerCounters* oc =
      stats != nullptr ? code_layer_of(stats->obs, coding_) : nullptr;
  if (oc != nullptr) {
    // Word-parallel flip census over the stored segment: after the
    // loop, `once` marks lanes with >= 1 mask flip and `twice` lanes
    // with >= 2, so once & ~twice is the scalar decoder's flips == 1.
    std::uint64_t once = 0;
    std::uint64_t twice = 0;
    for (std::size_t s = 0; s < sites_; ++s) {
      const std::uint64_t w = mask->word(offset + s);
      twice |= once & w;
      once |= w;
    }
    oc->reads += popcnt(active);
    oc->clean += popcnt(active & ~once);
    // Zero syndrome despite flips: an aliased multi-bit fault.
    oc->undetected += popcnt(active & once & ~any);
    // A data syndrome with exactly one flip is a genuine repair; with
    // two or more it is a miscorrection (same argument as the scalar
    // read_hamming — a lone flip decoding as kDataBit is that flip).
    oc->corrected += popcnt(active & is_data & once & ~twice);
    oc->miscorrected += popcnt(active & is_data & twice);
  }
  if (coding_ == LutCoding::kHammingIdeal) {
    if (stats != nullptr) {
      stats->accesses += popcnt(active);
      stats->corrections += popcnt(active & any & is_data);
      stats->detected_only += popcnt(active & any & ~is_data);
    }
    if (oc != nullptr) {
      oc->detected_uncorrectable += popcnt(active & any & ~is_data);
    }
    return faulted ^ eq;
  }
  // Naive corrector (the paper's, §5): on a non-data syndrome the shared
  // correction logic toggles the output whenever a failing check group
  // covers the addressed position — the false-positive word.
  std::uint64_t fp = 0;
  for (std::size_t j = 0; j < r_; ++j) {
    const std::uint64_t pos_j =
        lane_mux(k, addr_bits, [this, j](std::size_t a) {
          return pos_leaves_[j][a];
        });
    fp |= syn[j] & pos_j;
  }
  if (stats != nullptr) {
    stats->accesses += popcnt(active);
    stats->corrections += popcnt(active & any & (is_data | fp));
    stats->detected_only += popcnt(active & any & ~is_data & ~fp);
  }
  if (oc != nullptr) {
    oc->false_positive += popcnt(active & any & ~is_data & fp);
    oc->detected_uncorrectable += popcnt(active & any & ~is_data & ~fp);
  }
  // eq implies a data syndrome, so the two toggle sources are disjoint.
  return faulted ^ eq ^ (any & ~is_data & fp);
}

std::uint64_t BatchLut::read_fallback(const std::uint64_t* addr_bits,
                                      const BatchBitVec* mask,
                                      std::size_t offset,
                                      std::uint64_t active,
                                      LutAccessStats* stats) const {
  // Extension codings (Hsiao, Reed-Solomon) keep the scalar decoder.
  // Lanes whose mask segment is all-zero share one golden mux; only
  // touched lanes pay a per-lane extract + scalar read.
  std::uint64_t touched = 0;
  for (std::size_t s = 0; s < sites_; ++s) {
    touched |= mask->word(offset + s);
  }
  std::uint64_t out =
      lane_mux(static_cast<std::size_t>(k_), addr_bits,
               [this](std::size_t s) { return golden_[s]; });
  if (stats != nullptr) {
    stats->accesses += popcnt(active & ~touched);
    if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
      // Untouched lanes are clean reads; touched lanes fall through to
      // the scalar decoder below, which classifies them itself.
      oc->reads += popcnt(active & ~touched);
      oc->clean += popcnt(active & ~touched);
    }
  }
  BitVec lane_mask(sites_);
  for (std::uint64_t rest = active & touched; rest != 0;
       rest &= rest - 1) {
    const auto lane = static_cast<unsigned>(std::countr_zero(rest));
    mask->extract_lane(lane, offset, lane_mask);
    std::uint32_t addr = 0;
    for (std::size_t j = 0; j < static_cast<std::size_t>(k_); ++j) {
      addr |= static_cast<std::uint32_t>((addr_bits[j] >> lane) & 1u) << j;
    }
    const bool bit = lut_->read(addr, MaskView(lane_mask, 0, sites_), stats);
    const std::uint64_t sel = std::uint64_t{1} << lane;
    out = (out & ~sel) | (bit ? sel : 0);
  }
  return out;
}

}  // namespace nbx
