#include "lut/coded_lut.hpp"

#include <bit>
#include <cassert>

#include "coding/majority.hpp"
#include "lut/truth_table.hpp"
#include "obs/counters.hpp"

namespace nbx {

obs::CodeLayerCounters* code_layer_of(obs::Counters* sink, LutCoding coding) {
  if (sink == nullptr) {
    return nullptr;
  }
  switch (coding) {
    case LutCoding::kNone:
      return nullptr;
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
      return &sink->at(obs::CodeLayer::kHamming);
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      return &sink->at(obs::CodeLayer::kTmr);
    case LutCoding::kHsiao:
      return &sink->at(obs::CodeLayer::kHsiao);
    case LutCoding::kReedSolomon:
      return &sink->at(obs::CodeLayer::kRs);
  }
  return nullptr;
}

std::string_view lut_coding_suffix(LutCoding c) {
  switch (c) {
    case LutCoding::kNone:
      return "n";
    case LutCoding::kHamming:
      return "h";
    case LutCoding::kHammingIdeal:
      return "hideal";
    case LutCoding::kTmr:
      return "s";
    case LutCoding::kTmrInterleaved:
      return "si";
    case LutCoding::kHsiao:
      return "hsiao";
    case LutCoding::kReedSolomon:
      return "rs";
  }
  return "?";
}

LutAccessStats& LutAccessStats::operator+=(const LutAccessStats& o) {
  accesses += o.accesses;
  corrections += o.corrections;
  detected_only += o.detected_only;
  tmr_disagreements += o.tmr_disagreements;
  return *this;
}

std::size_t coded_lut_sites(std::size_t table_bits, LutCoding coding) {
  switch (coding) {
    case LutCoding::kNone:
      return table_bits;
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
      return table_bits + HammingCode::check_bits_for(table_bits);
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      return 3 * table_bits;
    case LutCoding::kHsiao:
      return table_bits + HsiaoCode::check_bits_for(table_bits);
    case LutCoding::kReedSolomon:
      return table_bits + 8;  // two GF(16) parity symbols
  }
  return 0;
}

CodedLut::CodedLut(BitVec tt, LutCoding coding)
    : coding_(coding), tt_(std::move(tt)) {
  assert(std::has_single_bit(tt_.size()));
  k_ = std::countr_zero(tt_.size());
  assert(k_ >= 1 && k_ <= kMaxLutInputs);
  fault_sites_ = coded_lut_sites(tt_.size(), coding_);
  switch (coding_) {
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
      hamming_ = std::make_unique<HammingCode>(tt_.size());
      checks_ = hamming_->generate_check_bits(tt_);
      break;
    case LutCoding::kHsiao:
      hsiao_ = std::make_unique<HsiaoCode>(tt_.size());
      checks_ = hsiao_->generate_check_bits(tt_);
      break;
    case LutCoding::kReedSolomon:
      rs_ = std::make_unique<Rs16Code>(tt_.size());
      checks_ = rs_->generate_check_bits(tt_);
      break;
    case LutCoding::kNone:
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      break;
  }
}

BitVec CodedLut::stored_bits() const {
  BitVec bits(fault_sites_);
  const std::size_t n = tt_.size();
  switch (coding_) {
    case LutCoding::kNone:
      for (std::size_t i = 0; i < n; ++i) {
        bits.set(i, tt_.get(i));
      }
      break;
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      for (std::size_t copy = 0; copy < 3; ++copy) {
        for (std::size_t i = 0; i < n; ++i) {
          bits.set(tmr_site(copy, i), tt_.get(i));
        }
      }
      break;
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
    case LutCoding::kHsiao:
    case LutCoding::kReedSolomon:
      for (std::size_t i = 0; i < n; ++i) {
        bits.set(i, tt_.get(i));
      }
      for (std::size_t i = 0; i < checks_.size(); ++i) {
        bits.set(n + i, checks_.get(i));
      }
      break;
  }
  return bits;
}

bool CodedLut::read(std::uint32_t addr, MaskView mask,
                    LutAccessStats* stats) const {
  assert(addr < tt_.size());
  assert(mask.is_null() || mask.size() == fault_sites_);
  if (stats != nullptr) {
    ++stats->accesses;
  }
  switch (coding_) {
    case LutCoding::kNone:
      return read_none(addr, mask);
    case LutCoding::kTmr:
    case LutCoding::kTmrInterleaved:
      return read_tmr(addr, mask, stats);
    case LutCoding::kHamming:
    case LutCoding::kHammingIdeal:
      return read_hamming(addr, mask, stats);
    case LutCoding::kHsiao:
      return read_hsiao(addr, mask, stats);
    case LutCoding::kReedSolomon:
      return read_rs(addr, mask, stats);
  }
  return false;
}

bool CodedLut::read_none(std::uint32_t addr, MaskView mask) const {
  // Only the addressed bit is exposed; faults elsewhere are invisible.
  return tt_.get(addr) ^ mask.get(addr);
}

std::size_t CodedLut::tmr_site(std::size_t copy, std::size_t addr) const {
  // kTmr stores the copies as three separate blocks [copy0|copy1|copy2];
  // kTmrInterleaved puts the three copies of each entry side by side
  // (entry-major), trading uniform-fault equivalence for burst exposure.
  if (coding_ == LutCoding::kTmrInterleaved) {
    return addr * 3 + copy;
  }
  return copy * tt_.size() + addr;
}

bool CodedLut::read_tmr(std::uint32_t addr, MaskView mask,
                        LutAccessStats* stats) const {
  const bool golden = tt_.get(addr);
  const bool c0 = golden ^ mask.get(tmr_site(0, addr));
  const bool c1 = golden ^ mask.get(tmr_site(1, addr));
  const bool c2 = golden ^ mask.get(tmr_site(2, addr));
  const bool voted = majority3(c0, c1, c2);
  if (stats != nullptr) {
    if (tmr_disagreement(c0, c1, c2)) {
      ++stats->tmr_disagreements;
    }
    if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
      ++oc->reads;
      if (c0 == golden && c1 == golden && c2 == golden) {
        ++oc->clean;
      } else if (voted == golden) {
        ++oc->corrected;
      } else {
        ++oc->miscorrected;
      }
    }
  }
  return voted;
}

bool CodedLut::read_hamming(std::uint32_t addr, MaskView mask,
                            LutAccessStats* stats) const {
  // Site layout: [table 2^k bits | check bits]. The decoder reads the
  // entire faulted string, exactly as the hardware of Figure 1(b) would.
  const std::size_t n = tt_.size();
  std::size_t flips = 0;  // mask bits that hit this LUT's stored string
  BitVec data = tt_;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.get(i)) {
      data.flip(i);
      ++flips;
    }
  }
  BitVec checks = checks_;
  for (std::size_t i = 0; i < hamming_->check_bits(); ++i) {
    if (mask.get(n + i)) {
      checks.flip(i);
      ++flips;
    }
  }
  obs::CodeLayerCounters* oc =
      stats != nullptr ? code_layer_of(stats->obs, coding_) : nullptr;
  if (oc != nullptr) {
    ++oc->reads;
  }
  const HammingCode::Decode d = hamming_->decode(data, checks);
  using Kind = HammingCode::Decode::Kind;
  switch (d.kind) {
    case Kind::kClean:
      // A silent syndrome with damage present is an undetected (aliased)
      // multi-bit fault.
      if (oc != nullptr) {
        ++(flips == 0 ? oc->clean : oc->undetected);
      }
      return data.get(addr);
    case Kind::kDataBit:
      // Unique single-data-bit explanation: repair it (this is a
      // miscorrection when the real fault was multi-bit — a single flip
      // decoding as kDataBit is always that flip, so repair is genuine
      // exactly when flips == 1).
      if (stats != nullptr) {
        ++stats->corrections;
      }
      if (oc != nullptr) {
        ++(flips == 1 ? oc->corrected : oc->miscorrected);
      }
      data.flip(static_cast<std::size_t>(d.data_index));
      return data.get(addr);
    case Kind::kCheckBit:
    case Kind::kInvalid:
      break;
  }
  // The syndrome does not identify a data bit the corrector can repair.
  if (coding_ == LutCoding::kHammingIdeal) {
    // Textbook SEC decoder: a check-bit syndrome means the data is
    // intact; an invalid syndrome is detected-uncorrectable. Either way
    // the addressed bit is passed through untouched.
    if (stats != nullptr) {
      ++stats->detected_only;
    }
    if (oc != nullptr) {
      ++oc->detected_uncorrectable;
    }
    return data.get(addr);
  }
  // The paper's corrector as evaluated (§5): the shared decode cannot
  // localize the error, and it toggles the function output whenever a
  // failing check group covers the addressed position — a false positive
  // triggered by errors in bits (the check bits) which are never
  // addressed by the lookup table inputs.
  const std::uint32_t addr_pos =
      hamming_->position_of_data(static_cast<std::size_t>(addr));
  const bool false_positive = (d.syndrome & addr_pos) != 0;
  if (stats != nullptr) {
    if (false_positive) {
      ++stats->corrections;  // a "correction" was applied (wrongly)
    } else {
      ++stats->detected_only;
    }
  }
  if (oc != nullptr) {
    ++(false_positive ? oc->false_positive : oc->detected_uncorrectable);
  }
  return data.get(addr) ^ false_positive;
}

bool CodedLut::read_hsiao(std::uint32_t addr, MaskView mask,
                          LutAccessStats* stats) const {
  const std::size_t n = tt_.size();
  std::size_t flips = 0;
  BitVec data = tt_;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.get(i)) {
      data.flip(i);
      ++flips;
    }
  }
  BitVec checks = checks_;
  for (std::size_t i = 0; i < hsiao_->check_bits(); ++i) {
    if (mask.get(n + i)) {
      checks.flip(i);
      ++flips;
    }
  }
  const HsiaoStatus st = hsiao_->detect_and_correct(data, checks);
  if (stats != nullptr) {
    if (st == HsiaoStatus::kCorrected) {
      ++stats->corrections;
    } else if (st != HsiaoStatus::kNoError) {
      ++stats->detected_only;
    }
    if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
      ++oc->reads;
      switch (st) {
        case HsiaoStatus::kNoError:
          ++(flips == 0 ? oc->clean : oc->undetected);
          break;
        case HsiaoStatus::kCorrected:
          // Odd-weight-column property: a kCorrected verdict with a
          // single real flip is always that flip (genuine); with 3+
          // flips it is an aliased miscorrection.
          ++(flips == 1 ? oc->corrected : oc->miscorrected);
          break;
        case HsiaoStatus::kDoubleDetected:
        case HsiaoStatus::kUncorrectable:
          ++oc->detected_uncorrectable;
          break;
      }
    }
  }
  return data.get(addr);
}

bool CodedLut::read_rs(std::uint32_t addr, MaskView mask,
                       LutAccessStats* stats) const {
  const std::size_t n = tt_.size();
  std::size_t flips = 0;
  BitVec data = tt_;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.get(i)) {
      data.flip(i);
      ++flips;
    }
  }
  BitVec checks = checks_;
  for (std::size_t i = 0; i < rs_->check_bits(); ++i) {
    if (mask.get(n + i)) {
      checks.flip(i);
      ++flips;
    }
  }
  const RsStatus st = rs_->detect_and_correct(data, checks);
  if (stats != nullptr) {
    if (st == RsStatus::kCorrected) {
      ++stats->corrections;
    } else if (st == RsStatus::kUncorrectable) {
      ++stats->detected_only;
    }
    if (obs::CodeLayerCounters* oc = code_layer_of(stats->obs, coding_)) {
      ++oc->reads;
      switch (st) {
        case RsStatus::kNoError:
          ++(flips == 0 ? oc->clean : oc->undetected);
          break;
        case RsStatus::kCorrected:
          // RS can genuinely fix several flips inside one symbol, so
          // "genuine" is judged by outcome: did the repaired data match
          // the golden table?
          ++(data == tt_ ? oc->corrected : oc->miscorrected);
          break;
        case RsStatus::kUncorrectable:
          ++oc->detected_uncorrectable;
          break;
      }
    }
  }
  return data.get(addr);
}

}  // namespace nbx
