#include "lut/hw_lut.hpp"

#include <cassert>
#include <string>
#include <vector>

namespace nbx {

HwTmrLut::HwTmrLut(BitVec tt) : tt_(std::move(tt)) {
  assert(tt_.size() == 16);
  // Inputs 0..3: address lines; inputs 4..51: storage cells
  // (copy-major: copy c bit i at input 4 + 16c + i).
  std::array<Signal, 4> a;
  for (int i = 0; i < 4; ++i) {
    a[i] = net_.add_input("a" + std::to_string(i));
  }
  std::array<std::array<Signal, 16>, 3> cell;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 16; ++i) {
      cell[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
          net_.add_input("s" + std::to_string(c) + "_" + std::to_string(i));
    }
  }
  // Shared address decode: 4 inverters + 16 minterms.
  std::array<Signal, 4> na;
  for (int i = 0; i < 4; ++i) {
    na[i] = net_.not1(a[i], "na" + std::to_string(i));
  }
  std::array<Signal, 16> minterm;
  for (int m = 0; m < 16; ++m) {
    std::vector<Signal> fanin;
    for (int i = 0; i < 4; ++i) {
      fanin.push_back((m >> i) & 1 ? a[i] : na[i]);
    }
    minterm[static_cast<std::size_t>(m)] =
        net_.add_gate(GateOp::kAndN, fanin, "mt" + std::to_string(m));
  }
  // Per-copy output mux: 16 AND2 + one wide OR.
  std::array<Signal, 3> copy_out;
  for (int c = 0; c < 3; ++c) {
    std::vector<Signal> terms;
    for (int m = 0; m < 16; ++m) {
      terms.push_back(net_.and2(
          minterm[static_cast<std::size_t>(m)],
          cell[static_cast<std::size_t>(c)][static_cast<std::size_t>(m)],
          "m" + std::to_string(c) + "_" + std::to_string(m)));
    }
    copy_out[static_cast<std::size_t>(c)] =
        net_.add_gate(GateOp::kOrN, terms, "out" + std::to_string(c));
  }
  // Majority corrector.
  const Signal p1 = net_.and2(copy_out[0], copy_out[1], "p1");
  const Signal p2 = net_.and2(copy_out[1], copy_out[2], "p2");
  const Signal p3 = net_.and2(copy_out[0], copy_out[2], "p3");
  const Signal q = net_.or2(p1, p2, "q");
  out_ = net_.or2(q, p3, "maj");
}

bool HwTmrLut::read(std::uint32_t addr, MaskView mask) const {
  assert(addr < 16);
  assert(mask.is_null() || mask.size() == fault_sites());
  // Pack inputs: address (4 bits) then the 48 storage cells with their
  // transient flips applied (a flipped cell presents the wrong value to
  // the hardware; the read-path gates may then fault on top).
  std::uint64_t inputs = addr & 0xF;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 16; ++i) {
      const bool stored = tt_.get(i) ^ mask.get(c * 16 + i);
      if (stored) {
        inputs |= std::uint64_t{1} << (4 + c * 16 + i);
      }
    }
  }
  const MaskView logic_mask =
      mask.is_null() ? MaskView{} : mask.subview(48, logic_sites());
  const auto nodes = net_.evaluate(inputs, logic_mask);
  return net_.value_of(out_, inputs, nodes);
}

HwRecursiveTmrLut::HwRecursiveTmrLut(BitVec tt) {
  replicas_.reserve(3);
  for (int i = 0; i < 3; ++i) {
    replicas_.emplace_back(BitVec(tt));
  }
  replica_sites_ = replicas_[0].fault_sites();
}

bool HwRecursiveTmrLut::read(std::uint32_t addr, MaskView mask) const {
  assert(mask.is_null() || mask.size() == fault_sites());
  bool r[3];
  for (std::size_t i = 0; i < 3; ++i) {
    const MaskView m =
        mask.is_null()
            ? MaskView{}
            : mask.subview(i * replica_sites_, replica_sites_);
    r[i] = replicas_[i].read(addr, m);
  }
  // Final gate-level majority: nodes p1, p2, p3, q, out — each output
  // individually faultable (mask bits at the tail of the site space).
  const std::size_t tail = 3 * replica_sites_;
  const bool p1 = (r[0] && r[1]) ^ mask.get(tail + 0);
  const bool p2 = (r[1] && r[2]) ^ mask.get(tail + 1);
  const bool p3 = (r[0] && r[2]) ^ mask.get(tail + 2);
  const bool q = (p1 || p2) ^ mask.get(tail + 3);
  return (q || p3) ^ mask.get(tail + 4);
}

}  // namespace nbx
