// coded_lut.hpp — the NanoBox bit-level fault-tolerant lookup table.
//
// Paper §2.1: "At the bit level, we use field programmable gate array
// (FPGA)-style lookup tables to implement the desired logic. These lookup
// tables contain error correction codes which can dynamically detect and,
// depending on the error densities and codes used, actually correct
// errors."
//
// Three codings from the paper are implemented, plus one extension:
//   * kNone    — bare truth table; an access exposes exactly the addressed
//                bit, so faults on other bits are invisible (this is why
//                alunn beats alunh at high fault rates, §5);
//   * kHamming — truth table + Hamming SEC check bits; every access runs
//                check-bit generator -> error detector -> error corrector
//                over the whole stored string (Figure 1b);
//   * kTmr     — three full copies of the truth table, per-access majority
//                vote of the addressed bit;
//   * kHsiao   — (extension, not in the paper's evaluation) SEC-DED that
//                refuses to correct on detected double errors.
//
// Faults are transient: the stored golden strings are never modified.
// Each access receives a MaskView that XOR-overlays this computation's
// fault mask onto the stored bits (paper Figure 6a).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "coding/hamming.hpp"
#include "coding/hsiao.hpp"
#include "coding/reed_solomon.hpp"
#include "common/bitvec.hpp"
#include "fault/mask_view.hpp"

namespace nbx {

namespace obs {
struct Counters;
struct CodeLayerCounters;
}  // namespace obs

/// Bit-level fault-tolerance technique of a coded LUT (paper §2.1).
///
/// kHamming models the paper's decoder *as evaluated*: the corrector can
/// repair a syndrome that identifies a unique data bit, but a syndrome it
/// cannot localize (a failing check bit, or a multi-bit fault producing
/// an out-of-range syndrome) makes the shared correction logic toggle the
/// function output whenever the failing check groups cover the addressed
/// position. This is the paper's "false positives caused by errors in
/// bits which are not addressed by the lookup table inputs" (§5) — check
/// bits are never addressed — and it is what makes alunh *worse* than
/// alunn. kHammingIdeal is the textbook SEC decoder (ignore check-bit
/// syndromes, never touch the output on ambiguity), provided as an
/// ablation: with it, information coding beats no coding, flipping the
/// paper's conclusion.
enum class LutCoding : std::uint8_t {
  kNone,          ///< no redundancy — Table 2 suffix "n"
  kHamming,       ///< Hamming information code, naive corrector — suffix "h"
  kHammingIdeal,  ///< Hamming with an ideal SEC decoder (ablation)
  kTmr,           ///< triplicated bit string, copies stored as three
                  ///< separate blocks — suffix "s"
  kTmrInterleaved,  ///< triplicated bit string with the three copies of
                    ///< each entry stored in adjacent cells (layout
                    ///< ablation: identical under uniform faults, but a
                    ///< physical burst can wipe all three copies of one
                    ///< entry) — suffix "si"
  kHsiao,         ///< SEC-DED extension (ablation only)
  kReedSolomon,   ///< RS over GF(16), 4-bit symbols, single-symbol
                  ///< correction (extension: the paper names RS in §2.1
                  ///< but never evaluates it; shines under burst faults)
};

/// Short Table-2-style suffix for a coding ("n", "h", "s", "hsiao").
std::string_view lut_coding_suffix(LutCoding c);

/// Counters a coded LUT reports per access; aggregated into the module /
/// cell error telemetry that ultimately drives the heartbeat signal.
struct LutAccessStats {
  std::uint64_t accesses = 0;
  std::uint64_t corrections = 0;     ///< decoder changed some bit
  std::uint64_t detected_only = 0;   ///< error seen but not corrected
  std::uint64_t tmr_disagreements = 0;  ///< TMR copies disagreed on the bit

  /// Optional fault-anatomy sink (not owned). When set, every coded
  /// read also classifies its outcome against the golden content into
  /// the per-code counters. Null costs one pointer test per read;
  /// reset() and operator+= leave the attachment alone.
  obs::Counters* obs = nullptr;

  void reset() {
    obs::Counters* sink = obs;
    *this = LutAccessStats{};
    obs = sink;
  }
  LutAccessStats& operator+=(const LutAccessStats& o);
};

/// The anatomy bucket a LutCoding reports into, or null for kNone /
/// a null sink (bare tables do no decoding, so no code-layer events).
obs::CodeLayerCounters* code_layer_of(obs::Counters* sink, LutCoding coding);

/// A K-input lookup table protected by one of the bit-level codings.
///
/// The object owns the *golden* stored strings (truth table + check bits /
/// copies). `read` never mutates them; the fault mask is overlaid per
/// access. fault_sites() is the number of stored bits — the LUT's share of
/// Table 2's fault-injection points.
class CodedLut {
 public:
  /// Builds a coded LUT for truth table `tt` (size must be a power of
  /// two, 2^1..2^kMaxLutInputs).
  CodedLut(BitVec tt, LutCoding coding);

  CodedLut(const CodedLut&) = delete;
  CodedLut& operator=(const CodedLut&) = delete;
  CodedLut(CodedLut&&) = default;
  CodedLut& operator=(CodedLut&&) = default;

  [[nodiscard]] LutCoding coding() const { return coding_; }
  [[nodiscard]] int inputs() const { return k_; }
  [[nodiscard]] std::size_t table_bits() const { return tt_.size(); }

  /// Number of stored (fault-injectable) bits:
  ///   kNone: 2^k; kHamming: 2^k + r; kTmr: 3 * 2^k; kHsiao: 2^k + r'.
  [[nodiscard]] std::size_t fault_sites() const { return fault_sites_; }

  /// Reads the LUT output for input vector `addr` under fault overlay
  /// `mask` (must have size fault_sites(); a null view means fault-free).
  /// `stats` may be null.
  [[nodiscard]] bool read(std::uint32_t addr, MaskView mask,
                          LutAccessStats* stats = nullptr) const;

  /// The golden (unfaulted, undecoded) truth table.
  [[nodiscard]] const BitVec& golden_table() const { return tt_; }

  /// The golden stored bit string in fault-site order — the bits a fault
  /// mask (or a manufacturing DefectMap) indexes: [table | checks] for
  /// information codes, three table copies for TMR. Size fault_sites().
  [[nodiscard]] BitVec stored_bits() const;

 private:
  int k_;
  LutCoding coding_;
  BitVec tt_;      // golden truth table, 2^k bits
  BitVec checks_;  // golden check bits (Hamming/Hsiao), empty otherwise
  std::size_t fault_sites_;
  // Code engines are shared per (coding, k); cheap to construct, but we
  // keep one per LUT for simplicity — they are a few small vectors.
  std::unique_ptr<HammingCode> hamming_;
  std::unique_ptr<HsiaoCode> hsiao_;
  std::unique_ptr<Rs16Code> rs_;

  [[nodiscard]] std::size_t tmr_site(std::size_t copy, std::size_t addr) const;
  [[nodiscard]] bool read_none(std::uint32_t addr, MaskView mask) const;
  [[nodiscard]] bool read_tmr(std::uint32_t addr, MaskView mask,
                              LutAccessStats* stats) const;
  [[nodiscard]] bool read_hamming(std::uint32_t addr, MaskView mask,
                                  LutAccessStats* stats) const;
  [[nodiscard]] bool read_hsiao(std::uint32_t addr, MaskView mask,
                                LutAccessStats* stats) const;
  [[nodiscard]] bool read_rs(std::uint32_t addr, MaskView mask,
                             LutAccessStats* stats) const;
};

/// Stored-bit count a coded LUT of `table_bits` would occupy, without
/// building one. Used by structural unit tests against Table 2.
std::size_t coded_lut_sites(std::size_t table_bits, LutCoding coding);

}  // namespace nbx
