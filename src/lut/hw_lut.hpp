// hw_lut.hpp — a gate-level hardware model of the TMR-coded lookup table.
//
// Paper §4: "we do not model faults in the lookup table error detector
// or corrector." This module removes that idealization: the LUT's read
// path — address decoder, per-copy output multiplexer, and the 3-way
// majority corrector — is synthesized into an actual netlist whose gate
// nodes are fault-injection sites alongside the 48 storage cells. The
// bench built on this (bench_detector_faults) quantifies how much of the
// paper's bit-level TMR reliability survives once the corrector itself
// is as faulty as the fabric it protects.
//
// Structure (4-input LUT, blocked TMR):
//   shared address decode: 4 inverters + 16 four-input minterm ANDs
//   per copy:              16 AND2 (minterm & storage bit) + 1 OR16
//   majority corrector:    3 AND2 + 2 OR2
// Logic sites = 4 + 16 + 3*17 + 5 = 76 gate nodes; storage sites = 48.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "fault/mask_view.hpp"
#include "gatesim/netlist.hpp"

namespace nbx {

/// Gate-level triplicated 4-input LUT with a faultable read path.
class HwTmrLut {
 public:
  /// Builds the hardware for truth table `tt` (must be 16 bits).
  explicit HwTmrLut(BitVec tt);

  /// Storage cells (three 16-bit copies, blocked layout).
  [[nodiscard]] std::size_t storage_sites() const { return 48; }

  /// Gate nodes in the read path (decoder + muxes + majority).
  [[nodiscard]] std::size_t logic_sites() const {
    return net_.node_count();
  }

  /// Total fault sites: storage then logic ([0,48) storage cells,
  /// [48, 48+logic) gate nodes).
  [[nodiscard]] std::size_t fault_sites() const {
    return storage_sites() + logic_sites();
  }

  /// Reads the LUT under a combined fault overlay: mask bits [0,48)
  /// flip storage cells, [48,...) flip read-path gate outputs.
  [[nodiscard]] bool read(std::uint32_t addr, MaskView mask) const;

  [[nodiscard]] const Netlist& netlist() const { return net_; }
  [[nodiscard]] const BitVec& golden_table() const { return tt_; }

 private:
  BitVec tt_;
  Netlist net_;
  Signal out_;  // majority output
};

/// The recursive answer to a faultable read path: THREE complete
/// HwTmrLut instances (storage + decoder + mux + majority, 124 sites
/// each) voted by one final gate-level majority (5 more nodes) — the
/// paper's box-within-a-box philosophy applied to the corrector itself.
/// Total sites: 3 x 124 + 5 = 377. A single fault anywhere — storage,
/// decoder, corrector — is now masked; only the 5-node final majority
/// remains a single point of failure.
class HwRecursiveTmrLut {
 public:
  explicit HwRecursiveTmrLut(BitVec tt);

  [[nodiscard]] std::size_t fault_sites() const {
    return 3 * replica_sites_ + kFinalMajoritySites;
  }
  [[nodiscard]] std::size_t replica_sites() const { return replica_sites_; }

  /// Site layout: [replica0 | replica1 | replica2 | 5 majority nodes].
  [[nodiscard]] bool read(std::uint32_t addr, MaskView mask) const;

  static constexpr std::size_t kFinalMajoritySites = 5;

 private:
  std::vector<HwTmrLut> replicas_;
  std::size_t replica_sites_;
};

}  // namespace nbx
