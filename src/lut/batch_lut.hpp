// batch_lut.hpp — lane-sliced (bit-parallel) evaluation of a CodedLut
// across up to 64 Monte Carlo trials at once.
//
// A BatchLut answers the same question as CodedLut::read — "what does the
// faulted LUT return for this address?" — for 64 independent fault lanes
// in one pass of word operations. Addresses are lane-sliced too (bit L of
// addr_bits[j] is address bit j in lane L) because downstream of the
// first faulted read, ripple carries and selector inputs diverge between
// trials.
//
// Per coding:
//   * kNone / kTmr / kTmrInterleaved — a Shannon mux tree over the
//     fault-XORed stored words selects each lane's addressed bit; TMR
//     runs three trees and majority-votes the words.
//   * kHamming / kHammingIdeal — the syndrome is a pure function of the
//     mask (the golden string is a codeword), so each syndrome bit is an
//     XOR of the mask words in its check group; the corrector's
//     data-bit / check-bit / invalid classification and the paper's
//     false-positive toggle are evaluated as lane-parallel predicates.
//   * kHsiao / kReedSolomon — lanes whose mask segment is untouched take
//     a golden mux-tree fast path; touched lanes fall back to the scalar
//     decoder (extension codings; not on the Table-2 hot path).
//
// Results are bit-identical to CodedLut::read lane by lane, including
// the LutAccessStats counters (aggregated over active lanes) — enforced
// by tests/lut/batch_lut_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/batch_bitvec.hpp"
#include "lut/coded_lut.hpp"

namespace nbx {

/// Lane-sliced reader bound to one CodedLut. Holds only derived constant
/// tables; the referenced CodedLut must outlive it (it serves the golden
/// strings and the scalar fallback path).
class BatchLut {
 public:
  explicit BatchLut(const CodedLut& lut);

  [[nodiscard]] int inputs() const { return k_; }
  [[nodiscard]] std::size_t fault_sites() const { return sites_; }

  // ------------------------------------------------------------------
  // Table views for the SIMD lane engine (src/simd/lane_engine_inl.hpp):
  // the wide kernels re-run the same decode algorithms at 128/256/512
  // lanes and consume these derived constants instead of rebuilding
  // them per tier. Broadcast leaves are all-zero/all-one 64-bit words;
  // a wide lane vector splats them across its lane words.
  [[nodiscard]] const CodedLut& coded() const { return *lut_; }
  [[nodiscard]] LutCoding coding() const { return coding_; }
  [[nodiscard]] std::size_t table_bits() const { return n_; }
  [[nodiscard]] const std::vector<std::uint64_t>& golden_leaves() const {
    return golden_;
  }
  [[nodiscard]] std::size_t check_bits() const { return r_; }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>&
  syndrome_sites() const {
    return syndrome_sites_;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& pos_leaves()
      const {
    return pos_leaves_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& is_data_leaves() const {
    return is_data_leaves_;
  }
  /// Segment-relative stored-bit site of TMR copy `copy` of table entry
  /// `entry` under this LUT's triplication layout.
  [[nodiscard]] std::size_t tmr_site(std::size_t copy,
                                     std::size_t entry) const;

  /// Reads all lanes at once. `addr_bits` points at inputs() lane words
  /// (bit L of addr_bits[j] = address bit j of lane L). `mask` is the
  /// whole-ALU batched fault mask with this LUT's segment starting at
  /// `offset` (null = fault-free). Only lanes set in `active` are
  /// meaningful in the returned word (and counted into `stats`, which is
  /// aggregated across lanes exactly as 64 scalar reads would).
  [[nodiscard]] std::uint64_t read(const std::uint64_t* addr_bits,
                                   const BatchBitVec* mask,
                                   std::size_t offset, std::uint64_t active,
                                   LutAccessStats* stats = nullptr) const;

 private:
  const CodedLut* lut_;
  LutCoding coding_;
  int k_;
  std::size_t n_;      // table bits (2^k)
  std::size_t sites_;  // stored bits, == lut_->fault_sites()
  std::vector<std::uint64_t> golden_;  // 2^k broadcast truth-table leaves

  // Hamming machinery (kHamming / kHammingIdeal only).
  std::size_t r_ = 0;  // check bits
  // Per check bit j: segment-relative site indices whose mask bits XOR
  // into syndrome bit j (the data sites of check group j, plus stored
  // check bit j itself).
  std::vector<std::vector<std::uint32_t>> syndrome_sites_;
  // Per check bit j: 2^k broadcast leaves of bit j of
  // position_of_data(addr) — the mux tree turns the lane addresses into
  // lane-sliced codeword positions.
  std::vector<std::vector<std::uint64_t>> pos_leaves_;
  // 2^r broadcast leaves: is syndrome value s a (correctable) data
  // position? Indexed by the lane-sliced syndrome via the same mux tree.
  std::vector<std::uint64_t> is_data_leaves_;

  [[nodiscard]] std::uint64_t read_tmr(const std::uint64_t* addr_bits,
                                       const BatchBitVec* mask,
                                       std::size_t offset,
                                       std::uint64_t active,
                                       LutAccessStats* stats) const;
  [[nodiscard]] std::uint64_t read_hamming(const std::uint64_t* addr_bits,
                                           const BatchBitVec* mask,
                                           std::size_t offset,
                                           std::uint64_t active,
                                           LutAccessStats* stats) const;
  [[nodiscard]] std::uint64_t read_fallback(const std::uint64_t* addr_bits,
                                            const BatchBitVec* mask,
                                            std::size_t offset,
                                            std::uint64_t active,
                                            LutAccessStats* stats) const;
};

}  // namespace nbx
