#include "serve/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "check/json_value.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "sim/manifest.hpp"

namespace nbx::serve {

namespace {

using check::JsonValue;

// --------------------------------------------------------------- names

const char* policy_name(FaultCountPolicy p) {
  switch (p) {
    case FaultCountPolicy::kRoundNearest:
      return "round";
    case FaultCountPolicy::kFloor:
      return "floor";
    case FaultCountPolicy::kBernoulli:
      return "bernoulli";
    case FaultCountPolicy::kBurst:
      return "burst";
  }
  return "round";
}

const char* scope_name(InjectionScope s) {
  return s == InjectionScope::kDatapathOnly ? "datapath" : "all";
}

const char* schedule_name(RateScheduleKind k) {
  switch (k) {
    case RateScheduleKind::kConstant:
      return "constant";
    case RateScheduleKind::kLinear:
      return "linear";
    case RateScheduleKind::kWeibull:
      return "weibull";
  }
  return "constant";
}

// ------------------------------------------------------------- parsing

bool fail(std::string* error, std::string_view why) {
  if (error != nullptr) {
    error->assign(why);
  }
  return false;
}

// Required member of a given kind; nullptr (with reason) otherwise.
const JsonValue* require(const JsonValue& doc, const char* key,
                         JsonValue::Kind kind, std::string* error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    if (error != nullptr) {
      *error = std::string("missing field '") + key + "'";
    }
    return nullptr;
  }
  if (v->kind() != kind) {
    if (error != nullptr) {
      *error = std::string("field '") + key + "' has the wrong type";
    }
    return nullptr;
  }
  return v;
}

// Optional u64 member with range check; `out` untouched when absent.
bool read_u64(const JsonValue& doc, const char* key, std::uint64_t lo,
              std::uint64_t hi, std::uint64_t* out, std::string* error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    return true;
  }
  const std::optional<std::uint64_t> n =
      v->is_number() ? v->as_u64() : std::nullopt;
  if (!n.has_value() || *n < lo || *n > hi) {
    return fail(error, std::string("field '") + key +
                           "' is not an integer in range");
  }
  *out = *n;
  return true;
}

// Optional finite double member with range check.
bool read_f64(const JsonValue& doc, const char* key, double lo, double hi,
              double* out, std::string* error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    return true;
  }
  const std::optional<double> n =
      v->is_number() ? v->as_double() : std::nullopt;
  if (!n.has_value() || !std::isfinite(*n) || *n < lo || *n > hi) {
    return fail(error, std::string("field '") + key +
                           "' is not a finite number in range");
  }
  *out = *n;
  return true;
}

bool parse_sweep_fields(const JsonValue& doc, SweepRequest* req,
                        std::string* error) {
  const JsonValue* alu =
      require(doc, "alu", JsonValue::Kind::kString, error);
  const JsonValue* percents =
      require(doc, "percents", JsonValue::Kind::kArray, error);
  const JsonValue* trials =
      require(doc, "trials", JsonValue::Kind::kNumber, error);
  const JsonValue* seed =
      require(doc, "seed", JsonValue::Kind::kNumber, error);
  if (alu == nullptr || percents == nullptr || trials == nullptr ||
      seed == nullptr) {
    return false;
  }
  req->alu = alu->as_string();
  if (req->alu.empty() || req->alu.size() > 64) {
    return fail(error, "field 'alu' is empty or implausibly long");
  }
  if (percents->items().empty() || percents->items().size() > 64) {
    return fail(error, "field 'percents' must hold 1..64 entries");
  }
  req->spec.percents.clear();
  for (const JsonValue& p : percents->items()) {
    const std::optional<double> v =
        p.is_number() ? p.as_double() : std::nullopt;
    if (!v.has_value() || !std::isfinite(*v) || *v < 0.0 || *v > 100.0) {
      return fail(error, "field 'percents' entries must be in [0, 100]");
    }
    req->spec.percents.push_back(*v);
  }
  const std::optional<std::int64_t> t = trials->as_i64();
  if (!t.has_value() || *t < 1 || *t > 1'000'000) {
    return fail(error, "field 'trials' must be in [1, 1000000]");
  }
  req->spec.trials_per_workload = static_cast<int>(*t);
  const std::optional<std::uint64_t> s = seed->as_u64();
  if (!s.has_value()) {
    return fail(error, "field 'seed' must be a u64");
  }
  req->spec.seed = *s;

  // Optional knobs; defaults are SweepSpec's defaults (the paper's
  // i.i.d. model), so an explicit default and an absent field produce
  // the same parsed request — and therefore the same fingerprint.
  if (const JsonValue* v = doc.find("policy")) {
    if (!v->is_string()) {
      return fail(error, "field 'policy' has the wrong type");
    }
    const std::optional<FaultCountPolicy> p = policy_from_name(v->as_string());
    if (!p.has_value()) {
      return fail(error, "unknown policy '" + v->as_string() + "'");
    }
    req->spec.policy = *p;
  }
  if (const JsonValue* v = doc.find("scope")) {
    if (!v->is_string()) {
      return fail(error, "field 'scope' has the wrong type");
    }
    const std::optional<InjectionScope> sc = scope_from_name(v->as_string());
    if (!sc.has_value()) {
      return fail(error, "unknown scope '" + v->as_string() + "'");
    }
    req->spec.scope = *sc;
  }
  if (const JsonValue* v = doc.find("schedule")) {
    if (!v->is_string()) {
      return fail(error, "field 'schedule' has the wrong type");
    }
    const std::optional<RateScheduleKind> k = schedule_from_name(v->as_string());
    if (!k.has_value()) {
      return fail(error, "unknown schedule '" + v->as_string() + "'");
    }
    req->spec.scenario.schedule.kind = *k;
  }
  std::uint64_t u = 0;
  u = req->spec.datapath_sites;
  if (!read_u64(doc, "datapath_sites", 0, 1'000'000, &u, error)) {
    return false;
  }
  req->spec.datapath_sites = static_cast<std::size_t>(u);
  u = req->spec.burst_length;
  if (!read_u64(doc, "burst_length", 1, 64, &u, error)) {
    return false;
  }
  req->spec.burst_length = static_cast<std::size_t>(u);
  u = req->spec.scenario.burst_rows;
  if (!read_u64(doc, "burst_rows", 1, 64, &u, error)) {
    return false;
  }
  req->spec.scenario.burst_rows = static_cast<std::size_t>(u);
  u = req->spec.scenario.burst_row_stride;
  if (!read_u64(doc, "burst_row_stride", 0, 1'000'000, &u, error)) {
    return false;
  }
  req->spec.scenario.burst_row_stride = static_cast<std::size_t>(u);
  if (!read_f64(doc, "end_factor", 0.0, 1000.0,
                &req->spec.scenario.schedule.end_factor, error) ||
      !read_f64(doc, "shape", 1e-3, 100.0,
                &req->spec.scenario.schedule.shape, error)) {
    return false;
  }
  if (req->spec.scope == InjectionScope::kDatapathOnly &&
      req->spec.datapath_sites < 1) {
    return fail(error, "scope 'datapath' requires datapath_sites >= 1");
  }
  return true;
}

// ---------------------------------------------------------- fnv stream

// Streaming FNV-1a over fixed-width little-endian words: the repo's one
// hash (common/rng.cpp fnv1a64) generalized to a running state so the
// fingerprint never materializes a buffer. Allocation-free.
class Fnv64 {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ULL;
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// --------------------------------------------------------- rendering

void append_points(std::string& out, const std::vector<DataPoint>& points) {
  out += "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += "{\"fault_percent\":";
    out += json_double(points[i].fault_percent);
    out += ",\"mean_percent_correct\":";
    out += json_double(points[i].mean_percent_correct);
    out += ",\"stddev\":";
    out += json_double(points[i].stddev);
    out += ",\"ci95\":";
    out += json_double(points[i].ci95);
    out += ",\"samples\":";
    out += std::to_string(points[i].samples);
    out += "}";
  }
  out += "]";
}

}  // namespace

std::optional<FaultCountPolicy> policy_from_name(std::string_view s) {
  if (s == "round") return FaultCountPolicy::kRoundNearest;
  if (s == "floor") return FaultCountPolicy::kFloor;
  if (s == "bernoulli") return FaultCountPolicy::kBernoulli;
  if (s == "burst") return FaultCountPolicy::kBurst;
  return std::nullopt;
}

std::optional<InjectionScope> scope_from_name(std::string_view s) {
  if (s == "all") return InjectionScope::kAll;
  if (s == "datapath") return InjectionScope::kDatapathOnly;
  return std::nullopt;
}

std::optional<RateScheduleKind> schedule_from_name(std::string_view s) {
  if (s == "constant") return RateScheduleKind::kConstant;
  if (s == "linear") return RateScheduleKind::kLinear;
  if (s == "weibull") return RateScheduleKind::kWeibull;
  return std::nullopt;
}

std::optional<ParsedRequest> parse_request(std::string_view payload,
                                           std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> doc = JsonValue::parse(payload, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) {
      *error = "bad json: " + parse_error;
    }
    return std::nullopt;
  }
  if (!doc->is_object()) {
    fail(error, "request is not a JSON object");
    return std::nullopt;
  }
  const JsonValue* kind = require(*doc, "kind", JsonValue::Kind::kString,
                                  error);
  if (kind == nullptr) {
    return std::nullopt;
  }
  ParsedRequest req;
  if (kind->as_string() == "ping") {
    req.kind = RequestKind::kPing;
    return req;
  }
  if (kind->as_string() == "stats") {
    req.kind = RequestKind::kStats;
    return req;
  }
  if (kind->as_string() == "sweep") {
    req.kind = RequestKind::kSweep;
    if (!parse_sweep_fields(*doc, &req.sweep, error)) {
      return std::nullopt;
    }
    return req;
  }
  fail(error, "unknown request kind '" + kind->as_string() + "'");
  return std::nullopt;
}

std::string render_sweep_request(const SweepRequest& req) {
  const SweepSpec& s = req.spec;
  std::string out = "{\"kind\":\"sweep\",\"alu\":\"";
  out += json_escape(req.alu);
  out += "\",\"percents\":[";
  for (std::size_t i = 0; i < s.percents.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += json_double(s.percents[i]);
  }
  out += "],\"trials\":";
  out += std::to_string(s.trials_per_workload);
  out += ",\"seed\":";
  out += std::to_string(s.seed);
  out += ",\"policy\":\"";
  out += policy_name(s.policy);
  out += "\",\"scope\":\"";
  out += scope_name(s.scope);
  out += "\",\"datapath_sites\":";
  out += std::to_string(s.datapath_sites);
  out += ",\"burst_length\":";
  out += std::to_string(s.burst_length);
  out += ",\"schedule\":\"";
  out += schedule_name(s.scenario.schedule.kind);
  out += "\",\"end_factor\":";
  out += json_double(s.scenario.schedule.end_factor);
  out += ",\"shape\":";
  out += json_double(s.scenario.schedule.shape);
  out += ",\"burst_rows\":";
  out += std::to_string(s.scenario.burst_rows);
  out += ",\"burst_row_stride\":";
  out += std::to_string(s.scenario.burst_row_stride);
  out += "}";
  return out;
}

std::string render_ping_request() { return "{\"kind\":\"ping\"}"; }
std::string render_stats_request() { return "{\"kind\":\"stats\"}"; }

void render_ok_response(std::string& out, std::uint64_t fingerprint,
                        const SweepRecord& record) {
  out += "{\"nbxd\":";
  out += std::to_string(kWireVersion);
  out += ",\"status\":\"ok\",\"fingerprint\":";
  out += std::to_string(fingerprint);
  out += ",\"alu\":\"";
  out += json_escape(record.alu);
  out += "\",\"points\":";
  append_points(out, record.points);
  if (!record.point_metrics.empty()) {
    out += ",\"anatomy\":[";
    for (std::size_t i = 0; i < record.point_metrics.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += obs::counters_json(record.point_metrics[i]);
    }
    out += "]";
  }
  out += "}";
}

void render_error_response(std::string& out, std::string_view message) {
  out += "{\"nbxd\":";
  out += std::to_string(kWireVersion);
  out += ",\"status\":\"error\",\"error\":\"";
  out += json_escape(message);
  out += "\"}";
}

void render_shed_response(std::string& out, std::uint32_t retry_after_ms) {
  out += "{\"nbxd\":";
  out += std::to_string(kWireVersion);
  out += ",\"status\":\"shed\",\"retry_after_ms\":";
  out += std::to_string(retry_after_ms);
  out += "}";
}

std::uint64_t request_fingerprint(const SweepRequest& req) {
  // Cached: the seed-chain probe allocates internally; everything below
  // is arithmetic, keeping the cache-hit serve path allocation-free
  // (tests/audit/alloc_audit_test.cpp counts).
  static const std::uint64_t chain = seed_chain_fingerprint();
  const SweepSpec& s = req.spec;
  Fnv64 h;
  h.u64(kWireVersion);
  h.str(req.alu);
  h.u64(s.percents.size());
  for (const double p : s.percents) {
    h.f64(p);
  }
  h.u64(static_cast<std::uint64_t>(s.trials_per_workload));
  h.u64(s.seed);
  h.u64(static_cast<std::uint64_t>(s.policy));
  h.u64(static_cast<std::uint64_t>(s.scope));
  h.u64(s.datapath_sites);
  h.u64(s.burst_length);
  h.u64(static_cast<std::uint64_t>(s.scenario.schedule.kind));
  h.f64(s.scenario.schedule.end_factor);
  h.f64(s.scenario.schedule.shape);
  h.u64(s.scenario.burst_rows);
  h.u64(s.scenario.burst_row_stride);
  h.u64(chain);
  h.u64(kGoldenRegistryFingerprint);
  return h.value();
}

void append_frame(std::string& out, std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, static_cast<std::uint32_t>(payload.size()));
  out.append(header, kFrameHeaderBytes);
  out.append(payload);
}

void encode_frame_header(char* bytes, std::uint32_t payload_len) {
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    bytes[i] = static_cast<char>((payload_len >> (8 * i)) & 0xffu);
  }
}

std::uint32_t decode_frame_header(const char* bytes) {
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
           << (8 * i);
  }
  return len;
}

}  // namespace nbx::serve
