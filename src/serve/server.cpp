#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/wire.hpp"

namespace nbx::serve {

namespace {

// Reads exactly n bytes. Returns 1 on success, 0 on clean EOF before
// the first byte, -1 on error/EOF mid-buffer or when `stop` is raised
// while still waiting for the first byte (idle connection draining).
int read_exact(int fd, char* buf, std::size_t n,
               const std::atomic<bool>& stop) {
  std::size_t got = 0;
  while (got < n) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (pr == 0) {
      // Timeout: between frames, a raised stop flag ends the
      // connection; mid-frame we keep waiting so an in-flight request
      // always completes (clean drain).
      if (got == 0 && stop.load(std::memory_order_relaxed)) {
        return -1;
      }
      continue;
    }
    const ssize_t r = read(fd, buf + got, n - got);
    if (r == 0) {
      return got == 0 ? 0 : -1;
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must cost
    // one connection, not a SIGPIPE killing the daemon.
    const ssize_t w = send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

Server::Server(const ServerConfig& cfg)
    : cfg_(cfg), service_(cfg.service) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (running_.load()) {
    return true;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.empty() ||
      cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path empty or too long for AF_UNIX";
    }
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  unlink(cfg_.socket_path.c_str());  // stale socket from a prior run
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, cfg_.accept_backlog) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen ") + cfg_.socket_path + ": " +
               std::strerror(errno);
    }
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) {
    t.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  unlink(cfg_.socket_path.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int pr = poll(&p, 1, 100);
    if (pr <= 0) {
      continue;
    }
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      continue;
    }
    const std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::connection_loop(int fd) {
  std::string payload;
  std::string response;
  std::string frame;
  char header[kFrameHeaderBytes];
  for (;;) {
    // The drain boundary is between frames: a request whose header we
    // have started reading always gets its response, but once stop is
    // raised no new frame is accepted — without this check a client
    // that never goes idle would keep the connection (and stop()'s
    // join) alive forever.
    if (stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    const int hr = read_exact(fd, header, kFrameHeaderBytes, stopping_);
    if (hr <= 0) {
      break;  // EOF, error, or idle drain
    }
    const std::uint32_t len = decode_frame_header(header);
    if (len == 0 || len > kMaxFramePayload) {
      // Protocol violation: answer with a structured error, then close
      // (the stream offset is unrecoverable).
      response.clear();
      render_error_response(response, "frame length out of range");
      frame.clear();
      append_frame(frame, response);
      write_all(fd, frame.data(), frame.size());
      break;
    }
    payload.resize(len);
    if (read_exact(fd, payload.data(), len, stopping_) != 1) {
      break;
    }
    response.clear();
    service_.handle(payload, response);
    frame.clear();
    append_frame(frame, response);
    if (!write_all(fd, frame.data(), frame.size())) {
      break;
    }
  }
  close(fd);
}

}  // namespace nbx::serve
