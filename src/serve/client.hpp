// client.hpp — a minimal blocking nbxd client: one unix-socket
// connection, sequential framed request/response. Used by the nbxq CLI,
// the bench_serve load generator, the integration tests, and the soak
// script's probe loop.
#pragma once

#include <string>
#include <string_view>

namespace nbx::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Connects to the daemon's unix socket. False (with reason) on
  /// failure.
  bool connect(const std::string& socket_path, std::string* error = nullptr);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one payload as a frame and reads exactly one response frame
  /// into `response` (replaced). False on any transport error.
  bool request(std::string_view payload, std::string& response,
               std::string* error = nullptr);

 private:
  int fd_ = -1;
};

}  // namespace nbx::serve
