#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "alu/alu_factory.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace nbx::serve {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

// Monotonic counters behind the public ServiceStats snapshot. Relaxed
// atomics: each is an independent tally, cross-counter invariants are
// only read after the relevant flights have completed.
struct SweepService::AtomicStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> jobs_computed{0};
  std::atomic<std::uint64_t> shards_executed{0};
  std::atomic<std::uint64_t> pings{0};
  std::atomic<std::uint64_t> stats_requests{0};
};

SweepService::SweepService(const ServiceConfig& cfg)
    : cfg_(cfg), stats_(std::make_unique<AtomicStats>()) {
  cfg_.workers = std::max(cfg_.workers, 1u);
  cfg_.min_items_per_shard = std::max<std::size_t>(cfg_.min_items_per_shard, 1);
  cfg_.max_cache_entries = std::max<std::size_t>(cfg_.max_cache_entries, 1);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    m_.requests = &reg->counter("nbxd_requests_total");
    m_.hits = &reg->counter("nbxd_cache_hits_total");
    m_.misses = &reg->counter("nbxd_cache_misses_total");
    m_.coalesced = &reg->counter("nbxd_coalesced_total");
    m_.shed = &reg->counter("nbxd_shed_total");
    m_.errors = &reg->counter("nbxd_errors_total");
    m_.jobs = &reg->counter("nbxd_compute_jobs_total");
    m_.shards = &reg->counter("nbxd_shards_total");
    m_.queue_depth = &reg->gauge("nbxd_queue_depth");
    m_.cache_entries = &reg->gauge("nbxd_cache_entries");
    m_.hit_us = &reg->histogram("nbxd_hit_latency_us");
    m_.compute_us = &reg->histogram("nbxd_compute_latency_us");
  }
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool SweepService::validate(const SweepRequest& req,
                            std::string* error) const {
  const std::optional<AluSpec> spec = find_spec(req.alu);
  if (!spec.has_value()) {
    *error = "unknown alu '" + req.alu + "'";
    return false;
  }
  if (req.spec.scope == InjectionScope::kDatapathOnly &&
      (req.spec.datapath_sites < 1 ||
       req.spec.datapath_sites > spec->expected_sites)) {
    *error = "datapath_sites out of range for alu '" + req.alu + "'";
    return false;
  }
  if (req.spec.percents.empty()) {
    *error = "empty percents";
    return false;
  }
  return true;
}

SweepService::Status SweepService::serve(const SweepRequest& req,
                                         std::string& out) {
  const Clock::time_point start = Clock::now();
  stats_->requests.fetch_add(1, std::memory_order_relaxed);
  if (m_.requests != nullptr) {
    m_.requests->increment();
  }
  const std::uint64_t fp = request_fingerprint(req);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (const auto it = cache_.find(fp); it != cache_.end()) {
      // The hot path the alloc audit pins down: one map probe, one
      // append into the caller's buffer, atomic tallies. No allocation.
      const std::shared_ptr<const std::string>& body = it->second;
      out.append(*body);
      lock.unlock();
      stats_->hits.fetch_add(1, std::memory_order_relaxed);
      if (m_.hits != nullptr) {
        m_.hits->increment();
        m_.hit_us->observe(elapsed_us(start));
      }
      return Status::kOk;
    }
    if (const auto it = flights_.find(fp); it != flights_.end()) {
      flight = it->second;
      stats_->coalesced.fetch_add(1, std::memory_order_relaxed);
      if (m_.coalesced != nullptr) {
        m_.coalesced->increment();
      }
    } else {
      if (queue_.size() >= cfg_.max_queue || stopping_) {
        lock.unlock();
        stats_->shed.fetch_add(1, std::memory_order_relaxed);
        if (m_.shed != nullptr) {
          m_.shed->increment();
        }
        render_shed_response(out, cfg_.retry_after_ms);
        return Status::kShed;
      }
      std::string verror;
      if (!validate(req, &verror)) {
        lock.unlock();
        stats_->errors.fetch_add(1, std::memory_order_relaxed);
        if (m_.errors != nullptr) {
          m_.errors->increment();
        }
        render_error_response(out, verror);
        return Status::kError;
      }
      flight = std::make_shared<Flight>();
      flights_.emplace(fp, flight);
      queue_.push_back(Job{fp, req, flight});
      stats_->misses.fetch_add(1, std::memory_order_relaxed);
      if (m_.misses != nullptr) {
        m_.misses->increment();
        m_.queue_depth->set(static_cast<double>(queue_.size()));
      }
      work_cv_.notify_one();
    }
  }
  {
    std::unique_lock<std::mutex> fl(flight->m);
    flight->cv.wait(fl, [&] { return flight->done; });
  }
  out.append(*flight->body);
  if (flight->ok) {
    if (m_.compute_us != nullptr) {
      m_.compute_us->observe(elapsed_us(start));
    }
    return Status::kOk;
  }
  stats_->errors.fetch_add(1, std::memory_order_relaxed);
  if (m_.errors != nullptr) {
    m_.errors->increment();
  }
  return Status::kError;
}

void SweepService::handle(std::string_view payload, std::string& out) {
  std::string error;
  const std::optional<ParsedRequest> req = parse_request(payload, &error);
  if (!req.has_value()) {
    stats_->errors.fetch_add(1, std::memory_order_relaxed);
    if (m_.errors != nullptr) {
      m_.errors->increment();
    }
    render_error_response(out, error);
    return;
  }
  switch (req->kind) {
    case RequestKind::kPing:
      stats_->pings.fetch_add(1, std::memory_order_relaxed);
      out += "{\"nbxd\":";
      out += std::to_string(kWireVersion);
      out += ",\"status\":\"ok\",\"kind\":\"pong\"}";
      return;
    case RequestKind::kStats: {
      stats_->stats_requests.fetch_add(1, std::memory_order_relaxed);
      const ServiceStats s = stats();
      out += "{\"nbxd\":";
      out += std::to_string(kWireVersion);
      out += ",\"status\":\"ok\",\"kind\":\"stats\"";
      const auto field = [&out](const char* name, std::uint64_t v) {
        out += ",\"";
        out += name;
        out += "\":";
        out += std::to_string(v);
      };
      field("requests", s.requests);
      field("hits", s.hits);
      field("misses", s.misses);
      field("coalesced", s.coalesced);
      field("shed", s.shed);
      field("errors", s.errors);
      field("jobs_computed", s.jobs_computed);
      field("shards_executed", s.shards_executed);
      field("pings", s.pings);
      field("stats_requests", s.stats_requests);
      field("queue_depth", s.queue_depth);
      field("cache_entries", s.cache_entries);
      out += "}";
      return;
    }
    case RequestKind::kSweep:
      serve(req->sweep, out);
      return;
  }
}

ServiceStats SweepService::stats() const {
  ServiceStats s;
  s.requests = stats_->requests.load(std::memory_order_relaxed);
  s.hits = stats_->hits.load(std::memory_order_relaxed);
  s.misses = stats_->misses.load(std::memory_order_relaxed);
  s.coalesced = stats_->coalesced.load(std::memory_order_relaxed);
  s.shed = stats_->shed.load(std::memory_order_relaxed);
  s.errors = stats_->errors.load(std::memory_order_relaxed);
  s.jobs_computed = stats_->jobs_computed.load(std::memory_order_relaxed);
  s.shards_executed =
      stats_->shards_executed.load(std::memory_order_relaxed);
  s.pings = stats_->pings.load(std::memory_order_relaxed);
  s.stats_requests = stats_->stats_requests.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  s.queue_depth = queue_.size();
  s.cache_entries = cache_.size();
  return s;
}

void SweepService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ and drained: exit. Queued jobs admitted before the
        // stop are always finished first (clean drain).
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      if (m_.queue_depth != nullptr) {
        m_.queue_depth->set(static_cast<double>(queue_.size()));
      }
    }
    compute_job(job);
  }
}

void SweepService::compute_job(const Job& job) {
  std::string body;
  bool ok = true;
  try {
    const SweepRecord record = compute(job.req);
    render_ok_response(body, job.fingerprint, record);
  } catch (const std::exception& e) {
    ok = false;
    body.clear();
    render_error_response(body, std::string("compute failed: ") + e.what());
  }
  auto shared = std::make_shared<const std::string>(std::move(body));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      cache_.emplace(job.fingerprint, shared);
      cache_order_.push_back(job.fingerprint);
      while (cache_order_.size() > cfg_.max_cache_entries) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
      }
      if (m_.cache_entries != nullptr) {
        m_.cache_entries->set(static_cast<double>(cache_.size()));
      }
    }
    flights_.erase(job.fingerprint);
  }
  stats_->jobs_computed.fetch_add(1, std::memory_order_relaxed);
  if (m_.jobs != nullptr) {
    m_.jobs->increment();
  }
  {
    const std::lock_guard<std::mutex> fl(job.flight->m);
    job.flight->body = shared;
    job.flight->ok = ok;
    job.flight->done = true;
  }
  job.flight->cv.notify_all();
}

SweepRecord SweepService::compute(const SweepRequest& req) {
  const std::unique_ptr<IAlu> alu = make_alu(req.alu);
  // validate() ran at admission; a null here would be a factory bug.
  if (alu == nullptr) {
    throw std::runtime_error("alu construction failed");
  }
  const std::vector<std::vector<Instruction>> streams =
      paper_streams(req.spec.seed);
  const std::size_t items = sweep_item_count(streams, req.spec);
  const std::size_t per_percent = items / req.spec.percents.size();
  std::vector<double> samples(items, 0.0);
  std::vector<obs::Counters> per_item(items);

  // Shard by contiguous item range. Every shard writes only its own
  // absolute slots and every cell's seed is a pure function of its
  // coordinates, so any shard count — including 1 — re-merges
  // bit-identically with a direct TrialEngine run.
  const unsigned pool_threads = resolve_threads(
      cfg_.shard_threads != 0 ? cfg_.shard_threads : cfg_.workers);
  std::size_t shards = 1;
  if (pool_threads > 1 && items >= 2 * cfg_.min_items_per_shard) {
    shards = std::min<std::size_t>(items / cfg_.min_items_per_shard,
                                   std::size_t{pool_threads} * 4);
  }
  if (shards <= 1) {
    run_sweep_items(*alu, streams, req.spec, 0, items, samples.data(),
                    per_item.data());
    stats_->shards_executed.fetch_add(1, std::memory_order_relaxed);
    if (m_.shards != nullptr) {
      m_.shards->increment();
    }
  } else {
    const std::size_t per_shard = (items + shards - 1) / shards;
    ThreadPool pool(pool_threads);
    pool.parallel_for(shards, 1, [&](std::size_t s) {
      const std::size_t first = s * per_shard;
      const std::size_t last = std::min(items, first + per_shard);
      if (first < last) {
        run_sweep_items(*alu, streams, req.spec, first, last,
                        samples.data(), per_item.data());
      }
    });
    stats_->shards_executed.fetch_add(shards, std::memory_order_relaxed);
    if (m_.shards != nullptr) {
      m_.shards->add(shards);
    }
  }

  // Re-merge: the engine's own fold per percent (index order), plus the
  // per-percent anatomy sums merged in index order — both exactly what
  // TrialEngine::sweep_anatomy does, so the record is bit-identical.
  SweepRecord record;
  record.alu = req.alu;
  record.points.reserve(req.spec.percents.size());
  record.point_metrics.assign(req.spec.percents.size(), obs::Counters{});
  for (std::size_t pi = 0; pi < req.spec.percents.size(); ++pi) {
    record.points.push_back(
        fold_sweep_samples(req.alu, req.spec.percents[pi],
                           samples.data() + pi * per_percent, per_percent));
    for (std::size_t i = 0; i < per_percent; ++i) {
      record.point_metrics[pi] += per_item[pi * per_percent + i];
    }
  }
  return record;
}

}  // namespace nbx::serve
