#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/wire.hpp"

namespace nbx::serve {

namespace {

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) {
    *error = why;
  }
  return false;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a daemon that went away mid-request must surface as
    // a failed request, not a SIGPIPE killing the whole client process.
    const ssize_t w = send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = read(fd, buf + got, n - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

ServeClient::~ServeClient() { close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool ServeClient::connect(const std::string& socket_path,
                          std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return set_error(error, "socket path empty or too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return set_error(error, std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why =
        std::string("connect ") + socket_path + ": " + std::strerror(errno);
    close();
    return set_error(error, why);
  }
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServeClient::request(std::string_view payload, std::string& response,
                          std::string* error) {
  if (fd_ < 0) {
    return set_error(error, "not connected");
  }
  char header[kFrameHeaderBytes];
  encode_frame_header(header, static_cast<std::uint32_t>(payload.size()));
  if (!write_all(fd_, header, kFrameHeaderBytes) ||
      !write_all(fd_, payload.data(), payload.size())) {
    return set_error(error, "short write (connection lost?)");
  }
  if (!read_all(fd_, header, kFrameHeaderBytes)) {
    return set_error(error, "no response frame (connection closed)");
  }
  const std::uint32_t len = decode_frame_header(header);
  if (len == 0 || len > kMaxFramePayload) {
    return set_error(error, "response frame length out of range");
  }
  response.resize(len);
  if (!read_all(fd_, response.data(), len)) {
    return set_error(error, "truncated response frame");
  }
  return true;
}

}  // namespace nbx::serve
