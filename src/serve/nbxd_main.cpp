// nbxd — the NanoBox sweep daemon.
//
// Serves SweepSpec evaluations over a unix socket with a
// content-addressed result cache, single-flight coalescing, sharded
// compute and admission control (src/serve/). Runs until SIGINT/SIGTERM,
// then drains in-flight requests and exits 0.
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/cli.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

constexpr const char kUsage[] =
    "Usage: nbxd --socket PATH [flags]\n"
    "  --socket PATH        unix socket to listen on (required)\n"
    "  --workers N          compute worker threads (default 2)\n"
    "  --shard-threads N    shard pool width per job (default: workers)\n"
    "  --queue N            max queued jobs before shedding (default 16)\n"
    "  --min-shard N        min sweep items per shard (default 32)\n"
    "  --cache N            max cached responses, FIFO-evicted "
    "(default 4096)\n"
    "  --retry-ms N         retry-after hint in shed responses "
    "(default 50)\n"
    "  --registry-out PATH  write Prometheus metrics text on exit\n"
    "  --quiet              no startup/shutdown chatter on stderr\n"
    "  --help               print this message\n";

}  // namespace

int main(int argc, char** argv) {
  const nbx::CliArgs args(argc, argv, {"quiet", "help"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string bad_flags = args.unknown_flag_message(
      {"socket", "workers", "shard-threads", "queue", "min-shard", "cache",
       "retry-ms", "registry-out", "quiet", "help"});
  if (!bad_flags.empty()) {
    std::cerr << "nbxd: " << bad_flags << "\n" << kUsage;
    return 2;
  }
  for (const char* numeric : {"workers", "shard-threads", "queue",
                              "min-shard", "cache", "retry-ms"}) {
    const std::string bad = args.invalid_number_message(numeric);
    if (!bad.empty()) {
      std::cerr << "nbxd: " << bad << "\n" << kUsage;
      return 2;
    }
  }
  nbx::serve::ServerConfig cfg;
  cfg.socket_path = args.get("socket");
  if (cfg.socket_path.empty()) {
    std::cerr << "nbxd: --socket PATH is required\n" << kUsage;
    return 2;
  }
  cfg.service.workers =
      static_cast<unsigned>(args.get_int("workers", 2));
  cfg.service.shard_threads =
      static_cast<unsigned>(args.get_int("shard-threads", 0));
  cfg.service.max_queue =
      static_cast<std::size_t>(args.get_int("queue", 16));
  cfg.service.min_items_per_shard =
      static_cast<std::size_t>(args.get_int("min-shard", 32));
  cfg.service.max_cache_entries =
      static_cast<std::size_t>(args.get_int("cache", 4096));
  cfg.service.retry_after_ms =
      static_cast<std::uint32_t>(args.get_int("retry-ms", 50));
  const bool quiet = args.has("quiet");
  const std::string registry_out = args.get("registry-out");

  // The registry must be installed before the service resolves its
  // metric handles (SweepService binds them at construction).
  nbx::obs::MetricsRegistry registry;
  const nbx::obs::ScopedMetricsRegistry scoped(&registry);

  nbx::serve::Server server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "nbxd: " << error << "\n";
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  if (!quiet) {
    std::cerr << "nbxd: listening on " << cfg.socket_path << " ("
              << cfg.service.workers << " workers, queue "
              << cfg.service.max_queue << ", cache "
              << cfg.service.max_cache_entries << ")\n";
  }
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  if (!registry_out.empty()) {
    std::ofstream os(registry_out);
    if (os) {
      registry.write_prometheus(os);
    } else {
      std::cerr << "nbxd: cannot write " << registry_out << "\n";
    }
  }
  if (!quiet) {
    const nbx::serve::ServiceStats s = server.service().stats();
    std::cerr << "nbxd: drained (" << s.requests << " requests, " << s.hits
              << " hits, " << s.jobs_computed << " computed, " << s.shed
              << " shed)\n";
  }
  return 0;
}
