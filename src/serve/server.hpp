// server.hpp — the nbxd daemon front end: a unix-domain-socket server
// around one SweepService.
//
// Transport only — framing, connection lifetime, drain. All protocol
// semantics (parsing, caching, coalescing, shedding) live in
// SweepService::handle, so the in-process service, the daemon, and the
// serve-differential oracle family all exercise the same code path.
//
// Threading model: one accept thread, one thread per connection (the
// expected client population is a handful of designers' tools, not ten
// thousand sockets — and each connection multiplexes any number of
// sequential requests). stop() closes the listener, lets every
// connection finish the request it is currently serving, then joins —
// the clean-drain contract the integration test pins down.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace nbx::serve {

struct ServerConfig {
  std::string socket_path;  ///< AF_UNIX path (<= ~100 bytes)
  ServiceConfig service;
  int accept_backlog = 16;
};

class Server {
 public:
  explicit Server(const ServerConfig& cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts the accept thread. False (with reason)
  /// when the socket cannot be created/bound.
  bool start(std::string* error);

  /// Stops accepting, drains in-flight requests, joins every connection
  /// thread, unlinks the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] const std::string& socket_path() const {
    return cfg_.socket_path;
  }
  [[nodiscard]] SweepService& service() { return service_; }
  [[nodiscard]] const SweepService& service() const { return service_; }

 private:
  void accept_loop();
  void connection_loop(int fd);

  ServerConfig cfg_;
  SweepService service_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace nbx::serve
