// wire.hpp — the nbxd wire protocol: frames, requests, responses,
// fingerprints.
//
// One frame = a 4-byte little-endian u32 payload length followed by that
// many bytes of UTF-8 JSON (a single object). Requests are parsed with
// the strict check::JsonValue reader — it preserves u64 lexemes (seeds
// survive untruncated) and rejects trailing garbage, so any truncated or
// malformed payload fails cleanly into a structured error response
// instead of a crash. Responses are hand-rolled single-line JSON through
// the shared obs/json primitives (json_escape, json_double), which makes
// them canonical: the same SweepRecord always renders to the same bytes,
// the property the content-addressed cache and the serve-differential
// check family both lean on.
//
// The request fingerprint is FNV-1a (the repo's one hash) streamed over
// the *parsed, canonicalized* request — field order and formatting of
// the incoming JSON cannot matter — mixed with seed_chain_fingerprint()
// and kGoldenRegistryFingerprint, so a cache entry can never outlive the
// arithmetic or the goldens that defined it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/bench_json.hpp"
#include "sim/trial_engine.hpp"

namespace nbx::serve {

/// Wire-protocol version, embedded in every response ("nbxd" key) and in
/// every request fingerprint.
inline constexpr std::uint32_t kWireVersion = 1;

/// Frame header: payload byte count as little-endian u32.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Hard payload cap; larger (or zero-length) frames are protocol errors.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// What a client asked for.
enum class RequestKind : std::uint8_t {
  kSweep,  ///< run (or fetch) one SweepSpec evaluation
  kPing,   ///< liveness probe
  kStats,  ///< service counters snapshot
};

/// A sweep request: one ALU by Table-2 name plus the full SweepSpec.
/// Workload streams are not part of the request — the service always
/// evaluates the paper's two streams over the image derived from
/// spec.seed (paper_streams(spec.seed)), matching the differential
/// oracle families.
struct SweepRequest {
  std::string alu;
  SweepSpec spec;

  [[nodiscard]] bool operator==(const SweepRequest&) const = default;
};

/// A parsed request of any kind.
struct ParsedRequest {
  RequestKind kind = RequestKind::kPing;
  SweepRequest sweep;  ///< meaningful iff kind == kSweep
};

/// Parses one request payload. Returns nullopt (with a human-readable
/// reason in `error`) on any syntax error, unknown kind, missing or
/// ill-typed field, or out-of-range knob. Never throws.
std::optional<ParsedRequest> parse_request(std::string_view payload,
                                           std::string* error = nullptr);

/// Renders the canonical JSON payload for a sweep request (the client
/// side of parse_request; round-trips exactly).
std::string render_sweep_request(const SweepRequest& req);
std::string render_ping_request();
std::string render_stats_request();

/// Appends the canonical "ok" response for one evaluated sweep:
/// {"nbxd":1,"status":"ok","fingerprint":...,"alu":...,"points":[...],
///  "anatomy":[...]}. Deterministic bytes — this is the cached value.
void render_ok_response(std::string& out, std::uint64_t fingerprint,
                        const SweepRecord& record);

/// Appends {"nbxd":1,"status":"error","error":"..."}.
void render_error_response(std::string& out, std::string_view message);

/// Appends {"nbxd":1,"status":"shed","retry_after_ms":N} — the
/// admission-control load-shed response.
void render_shed_response(std::string& out, std::uint32_t retry_after_ms);

/// The wire-format name <-> enum maps, shared by parse_request, the
/// canonical renderers and the CLIs (nullopt for unknown names).
[[nodiscard]] std::optional<FaultCountPolicy> policy_from_name(
    std::string_view s);
[[nodiscard]] std::optional<InjectionScope> scope_from_name(
    std::string_view s);
[[nodiscard]] std::optional<RateScheduleKind> schedule_from_name(
    std::string_view s);

/// Content address of a sweep request: FNV-1a over the canonicalized
/// request fields + wire version + seed_chain_fingerprint() +
/// kGoldenRegistryFingerprint. Pure function of the parsed request;
/// allocation-free after the first call (the seed-chain probe is cached).
[[nodiscard]] std::uint64_t request_fingerprint(const SweepRequest& req);

/// Appends header + payload as one frame.
void append_frame(std::string& out, std::string_view payload);

/// Encodes/decodes the 4-byte little-endian length header.
void encode_frame_header(char* bytes, std::uint32_t payload_len);
[[nodiscard]] std::uint32_t decode_frame_header(const char* bytes);

}  // namespace nbx::serve
