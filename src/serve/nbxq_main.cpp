// nbxq — the nbxd query client.
//
// Builds one request (sweep by default; --ping / --stats for the other
// kinds), sends it over the daemon's unix socket and prints the raw
// response payload (one JSON object) to stdout. With --repeat N the
// same sweep is sent N times and the responses are verified
// byte-identical — a one-flag probe of the content-addressed cache.
//
// Exit codes: 0 response ok, 1 server said error/shed (or responses
// diverged), 2 usage, 3 transport failure.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

constexpr const char kUsage[] =
    "Usage: nbxq --socket PATH [flags]\n"
    "  --socket PATH        daemon unix socket (required)\n"
    "  --ping               liveness probe instead of a sweep\n"
    "  --stats              service counters instead of a sweep\n"
    "  --alu NAME           Table-2 ALU name (default aluss)\n"
    "  --percents a,b,c     fault percentages (default 2)\n"
    "  --trials N           trials per workload (default 5)\n"
    "  --seed N             sweep seed (default 2026)\n"
    "  --policy NAME        round|floor|bernoulli|burst (default round)\n"
    "  --scope NAME         all|datapath (default all)\n"
    "  --datapath-sites N   eligible sites for scope datapath\n"
    "  --burst-length N     burst length (policy burst)\n"
    "  --schedule NAME      constant|linear|weibull (default constant)\n"
    "  --end-factor X       schedule endpoint rate multiplier\n"
    "  --shape X            weibull shape\n"
    "  --burst-rows N       2-D strike height\n"
    "  --burst-row-stride N sites per row (0 = 1-D strikes)\n"
    "  --repeat N           send the sweep N times, verify identical "
    "bytes\n"
    "  --quiet              print only the (first) response payload\n"
    "  --help               print this message\n";

bool response_ok(const std::string& payload) {
  // Cheap status probe without a full parse: responses are canonical
  // single-line JSON rendered by wire.cpp.
  return payload.find("\"status\":\"ok\"") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const nbx::CliArgs args(argc, argv, {"ping", "stats", "quiet", "help"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string bad_flags = args.unknown_flag_message(
      {"socket", "ping", "stats", "alu", "percents", "trials", "seed",
       "policy", "scope", "datapath-sites", "burst-length", "schedule",
       "end-factor", "shape", "burst-rows", "burst-row-stride", "repeat",
       "quiet", "help"});
  if (!bad_flags.empty()) {
    std::cerr << "nbxq: " << bad_flags << "\n" << kUsage;
    return 2;
  }
  for (const char* numeric : {"trials", "seed", "datapath-sites",
                              "burst-length", "burst-rows",
                              "burst-row-stride", "repeat"}) {
    const std::string bad = args.invalid_number_message(numeric);
    if (!bad.empty()) {
      std::cerr << "nbxq: " << bad << "\n" << kUsage;
      return 2;
    }
  }
  const std::string socket_path = args.get("socket");
  if (socket_path.empty()) {
    std::cerr << "nbxq: --socket PATH is required\n" << kUsage;
    return 2;
  }

  std::string payload;
  long long repeat = 1;
  if (args.has("ping")) {
    payload = nbx::serve::render_ping_request();
  } else if (args.has("stats")) {
    payload = nbx::serve::render_stats_request();
  } else {
    nbx::serve::SweepRequest req;
    req.alu = args.get("alu", "aluss");
    for (const std::string& p : split_csv(args.get("percents", "2"))) {
      req.spec.percents.push_back(std::strtod(p.c_str(), nullptr));
    }
    req.spec.trials_per_workload =
        static_cast<int>(args.get_int("trials", 5));
    req.spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
    req.spec.datapath_sites =
        static_cast<std::size_t>(args.get_int("datapath-sites", 0));
    req.spec.burst_length =
        static_cast<std::size_t>(args.get_int("burst-length", 1));
    req.spec.scenario.burst_rows =
        static_cast<std::size_t>(args.get_int("burst-rows", 1));
    req.spec.scenario.burst_row_stride =
        static_cast<std::size_t>(args.get_int("burst-row-stride", 0));
    req.spec.scenario.schedule.end_factor =
        args.get_double("end-factor", 1.0);
    req.spec.scenario.schedule.shape = args.get_double("shape", 1.0);
    const auto policy = nbx::serve::policy_from_name(
        args.get("policy", "round"));
    const auto scope = nbx::serve::scope_from_name(args.get("scope", "all"));
    const auto schedule = nbx::serve::schedule_from_name(
        args.get("schedule", "constant"));
    if (!policy.has_value() || !scope.has_value() ||
        !schedule.has_value()) {
      std::cerr << "nbxq: unknown --policy/--scope/--schedule name\n";
      return 2;
    }
    req.spec.policy = *policy;
    req.spec.scope = *scope;
    req.spec.scenario.schedule.kind = *schedule;
    std::string rendered = nbx::serve::render_sweep_request(req);
    std::string perror;
    if (!nbx::serve::parse_request(rendered, &perror).has_value()) {
      std::cerr << "nbxq: bad sweep flags: " << perror << "\n";
      return 2;
    }
    payload = std::move(rendered);
    repeat = std::max<long long>(1, args.get_int("repeat", 1));
  }

  nbx::serve::ServeClient client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    std::cerr << "nbxq: " << error << "\n";
    return 3;
  }
  std::string first;
  std::string response;
  for (long long i = 0; i < repeat; ++i) {
    if (!client.request(payload, response, &error)) {
      std::cerr << "nbxq: " << error << "\n";
      return 3;
    }
    if (i == 0) {
      first = response;
      std::cout << response << "\n";
    } else if (response != first) {
      std::cerr << "nbxq: response " << (i + 1)
                << " differs from the first (cache determinism "
                   "violation)\n";
      return 1;
    }
  }
  if (repeat > 1 && !args.has("quiet")) {
    std::cerr << "nbxq: " << repeat << " identical responses\n";
  }
  return response_ok(first) ? 0 : 1;
}
