// service.hpp — the nbxd sweep service: content-addressed cache,
// single-flight coalescing, sharded compute, admission control.
//
// Everything this simulator computes is a pure function of a SweepSpec:
// counter-based seeding (MaskGenerator::trial_seed) makes every
// (percent, workload, trial) cell reproducible from its coordinates, and
// the golden-registry + seed-chain fingerprints pin the arithmetic. The
// service exploits that determinism three ways:
//
//   * content-addressed cache — request_fingerprint(req) is the identity
//     of the *answer*, not the request text, so repeated queries (the
//     "millions of users" workload: many designers, few distinct specs)
//     are served from a rendered-response cache in O(1) with zero
//     allocations on the hit path;
//   * single-flight coalescing — duplicate specs in flight share one
//     computation: followers block on the leader's Flight and receive
//     the identical bytes (exactly-one compute per unique fingerprint);
//   * shard-and-merge — large sweeps split by item range over the flat
//     [percent][workload][trial] grid (run_sweep_items) across a thread
//     pool and re-fold with the engine's own fold, bit-identical to a
//     direct TrialEngine run by construction.
//
// Admission control bounds the compute queue: when it is full, new
// unique specs are shed with a structured retry-after response (cache
// hits and coalesced duplicates are never shed — they cost no compute).
// All decisions are observable via ServiceStats (always on, atomics) and
// obs::MetricsRegistry (when installed; nbxd_* series, see
// docs/SERVING.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/wire.hpp"

namespace nbx::obs {
class MetricCounter;
class MetricGauge;
class MetricHistogram;
}  // namespace nbx::obs

namespace nbx::serve {

/// Tuning knobs for one SweepService.
struct ServiceConfig {
  unsigned workers = 2;        ///< compute worker threads (>= 1)
  unsigned shard_threads = 0;  ///< per-job shard pool width; 0 = workers
  std::size_t max_queue = 16;  ///< queued jobs before load-shedding
  /// Minimum items per shard: jobs smaller than two shards' worth run
  /// unsharded (shard bookkeeping would dominate).
  std::size_t min_items_per_shard = 32;
  std::size_t max_cache_entries = 4096;  ///< FIFO-evicted beyond this
  std::uint32_t retry_after_ms = 50;     ///< hint in shed responses
};

/// Monotonic service counters (atomically maintained, always available —
/// the stats request kind and the integration tests read these even when
/// no MetricsRegistry is installed).
struct ServiceStats {
  std::uint64_t requests = 0;   ///< sweep requests accepted for serving
  std::uint64_t hits = 0;       ///< served from the rendered cache
  std::uint64_t misses = 0;     ///< became the leader of a new compute
  std::uint64_t coalesced = 0;  ///< joined an in-flight duplicate
  std::uint64_t shed = 0;       ///< rejected by admission control
  std::uint64_t errors = 0;     ///< structured error responses
  std::uint64_t jobs_computed = 0;    ///< compute jobs finished
  std::uint64_t shards_executed = 0;  ///< run_sweep_items shards run
  std::uint64_t pings = 0;
  std::uint64_t stats_requests = 0;
  std::size_t queue_depth = 0;    ///< jobs waiting right now
  std::size_t cache_entries = 0;  ///< rendered responses held
};

/// The in-process sweep service. A Server (server.hpp) exposes one over
/// a unix socket; tests and the serve-differential oracle family drive
/// it directly.
class SweepService {
 public:
  enum class Status : std::uint8_t { kOk, kError, kShed };

  explicit SweepService(const ServiceConfig& cfg = {});
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Serves one parsed sweep request: appends exactly one complete
  /// response payload (ok / error / shed) to `out` and returns its
  /// status. Blocks while a computation is required (leader or
  /// coalesced follower). The cache-hit path performs no allocations
  /// (append into `out` aside, whose capacity the caller amortizes).
  Status serve(const SweepRequest& req, std::string& out);

  /// Full wire path: parses one request payload of any kind and appends
  /// exactly one response payload. Never throws, never crashes on
  /// malformed input — that is the protocol contract the
  /// serve-differential family enforces with truncated/bit-flipped/
  /// garbage payloads.
  void handle(std::string_view payload, std::string& out);

  /// Snapshot of the service counters.
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  // One in-flight computation: the leader computes, followers wait on
  // the condition variable and copy the shared rendered body.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::shared_ptr<const std::string> body;
  };

  struct Job {
    std::uint64_t fingerprint = 0;
    SweepRequest req;
    std::shared_ptr<Flight> flight;
  };

  void worker_loop();
  void compute_job(const Job& job);
  [[nodiscard]] SweepRecord compute(const SweepRequest& req);
  bool validate(const SweepRequest& req, std::string* error) const;

  ServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopping_ = false;
  std::deque<Job> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const std::string>>
      cache_;
  std::deque<std::uint64_t> cache_order_;  // FIFO eviction
  std::vector<std::thread> workers_;

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;

  // Pre-resolved metric handles (nullptr when no registry was installed
  // at construction): hot-path increments stay allocation-free.
  struct MetricHandles {
    obs::MetricCounter* requests = nullptr;
    obs::MetricCounter* hits = nullptr;
    obs::MetricCounter* misses = nullptr;
    obs::MetricCounter* coalesced = nullptr;
    obs::MetricCounter* shed = nullptr;
    obs::MetricCounter* errors = nullptr;
    obs::MetricCounter* jobs = nullptr;
    obs::MetricCounter* shards = nullptr;
    obs::MetricGauge* queue_depth = nullptr;
    obs::MetricGauge* cache_entries = nullptr;
    obs::MetricHistogram* hit_us = nullptr;
    obs::MetricHistogram* compute_us = nullptr;
  };
  MetricHandles m_;
};

}  // namespace nbx::serve
