#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace nbx {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (const double x : xs) {
    s.add(x);
  }
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (const double x : xs) {
    s.add(x);
  }
  return s.stddev();
}

double ci95_half_width(double stddev, std::size_t n) {
  if (n < 2) {
    return 0.0;
  }
  // Two-sided 97.5% Student-t quantiles for df = n-1; 1.96 asymptote.
  static constexpr double kT[] = {0,     12.706, 4.303, 3.182, 2.776,
                                  2.571, 2.447,  2.365, 2.306, 2.262,
                                  2.228, 2.201,  2.179, 2.160, 2.145,
                                  2.131, 2.120,  2.110, 2.101, 2.093,
                                  2.086, 2.080,  2.074, 2.069, 2.064,
                                  2.060, 2.056,  2.052, 2.048, 2.045};
  const std::size_t df = n - 1;
  const double t = df < std::size(kT) ? kT[df] : 1.96;
  return t * stddev / std::sqrt(static_cast<double>(n));
}

}  // namespace nbx
