#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace nbx {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (unsigned i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::drain(bool is_worker) {
  // Metrics path: only read the clock and count chunks when a registry
  // resolved handles for this job; one local tally, one add at the end.
  const bool instrumented = chunks_metric_ != nullptr;
  const auto t0 = instrumented ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  std::uint64_t local_chunks = 0;
  while (true) {
    const std::size_t begin = next_.fetch_add(chunk_);
    if (begin >= n_) {
      break;
    }
    ++local_chunks;
    const std::size_t end = std::min(begin + chunk_, n_);
    for (std::size_t i = begin; i < end; ++i) {
      (*body_)(i);
    }
  }
  if (instrumented && local_chunks > 0) {
    chunks_metric_->add(local_chunks);
    if (is_worker) {
      steals_metric_->add(local_chunks);
    }
    const auto busy = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    busy_us_metric_->add(static_cast<std::uint64_t>(busy.count()));
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) {
        return;
      }
      seen = epoch_;
    }
    drain(/*is_worker=*/true);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++finished_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("threadpool_parallel_for_total").increment();
      reg->counter("threadpool_items_total").add(n);
      reg->gauge("threadpool_threads").set(1.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (4 * thread_count()));
  }
  // Resolve metric handles for this job if a registry is attached; one
  // pointer test when detached, nothing else.
  obs::MetricCounter* chunks_metric = nullptr;
  obs::MetricCounter* steals_metric = nullptr;
  obs::MetricCounter* busy_metric = nullptr;
  obs::MetricsRegistry* const reg = obs::metrics();
  if (reg != nullptr) {
    chunks_metric = &reg->counter("threadpool_chunks_total");
    steals_metric = &reg->counter("threadpool_steals_total");
    busy_metric = &reg->counter("threadpool_busy_microseconds_total");
    reg->counter("threadpool_parallel_for_total").increment();
    reg->counter("threadpool_items_total").add(n);
    reg->gauge("threadpool_threads").set(thread_count());
    reg->gauge("threadpool_queue_depth")
        .set(static_cast<double>((n + chunk - 1) / chunk));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    n_ = n;
    chunk_ = chunk;
    next_.store(0);
    finished_ = 0;
    chunks_metric_ = chunks_metric;
    steals_metric_ = steals_metric;
    busy_us_metric_ = busy_metric;
    ++epoch_;
  }
  wake_cv_.notify_all();
  drain(/*is_worker=*/false);  // the caller participates
  std::unique_lock<std::mutex> lk(mu_);
  // Wait for every worker to have finished the epoch (not just for the
  // counter to be exhausted) so `body` cannot dangle.
  done_cv_.wait(lk, [&] { return finished_ == workers_.size(); });
  body_ = nullptr;
  if (reg != nullptr) {
    reg->gauge("threadpool_queue_depth").set(0.0);
  }
  chunks_metric_ = nullptr;
  steals_metric_ = nullptr;
  busy_us_metric_ = nullptr;
}

}  // namespace nbx
