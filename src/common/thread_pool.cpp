#include "common/thread_pool.hpp"

#include <algorithm>

namespace nbx {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (unsigned i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::drain() {
  while (true) {
    const std::size_t begin = next_.fetch_add(chunk_);
    if (begin >= n_) {
      return;
    }
    const std::size_t end = std::min(begin + chunk_, n_);
    for (std::size_t i = begin; i < end; ++i) {
      (*body_)(i);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) {
        return;
      }
      seen = epoch_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++finished_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (4 * thread_count()));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    n_ = n;
    chunk_ = chunk;
    next_.store(0);
    finished_ = 0;
    ++epoch_;
  }
  wake_cv_.notify_all();
  drain();  // the caller participates
  std::unique_lock<std::mutex> lk(mu_);
  // Wait for every worker to have finished the epoch (not just for the
  // counter to be exhausted) so `body` cannot dangle.
  done_cv_.wait(lk, [&] { return finished_ == workers_.size(); });
  body_ = nullptr;
}

}  // namespace nbx
