// types.hpp — core vocabulary types shared across the NanoBox libraries.
#pragma once

#include <cstdint>
#include <string_view>

namespace nbx {

/// The four-instruction ALU ISA of Table 1. Encodings are the paper's:
/// AND=000, OR=001, XOR=010, ADD=111 (3-bit opcode field).
enum class Opcode : std::uint8_t {
  kAnd = 0b000,
  kOr = 0b001,
  kXor = 0b010,
  kAdd = 0b111,
};

/// Opcode field width in the memory word and on the ALU interface.
inline constexpr int kOpcodeBits = 3;

/// Datapath width: all operands, results and buses are 8 bits wide.
inline constexpr int kWordBits = 8;

/// Computes the golden (fault-free) result of an ALU instruction.
/// ADD wraps modulo 256, matching an 8-bit ripple adder with the carry
/// out of the top bit discarded.
std::uint8_t golden_alu(Opcode op, std::uint8_t a, std::uint8_t b);

/// Human-readable mnemonic ("AND", "OR", "XOR", "ADD").
std::string_view opcode_name(Opcode op);

/// True if the 3-bit encoding `bits` is one of the four defined opcodes.
bool opcode_is_valid(std::uint8_t bits);

/// All defined opcodes, for iteration in tests and sweeps.
inline constexpr Opcode kAllOpcodes[] = {Opcode::kAnd, Opcode::kOr,
                                         Opcode::kXor, Opcode::kAdd};

}  // namespace nbx
