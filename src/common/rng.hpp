// rng.hpp — deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (fault-mask generation,
// workload synthesis, trial seeding) draws from this generator so that
// experiments are exactly repeatable from a single seed, as required for
// a credible fault-injection study.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace nbx {

/// SplitMix64 — used to expand a single user seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator. Small,
/// fast, passes BigCrush, and trivially seedable from SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Splits off an independently seeded child generator. Children of the
  /// same parent with distinct `stream` values are decorrelated; used to
  /// give each trial / each cell its own stream.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

  /// Samples `k` distinct values from [0, n) in O(k) expected time
  /// (Floyd's algorithm). Order of the result is unspecified.
  /// Requires k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so split() can derive child seeds
};

/// SplitMix64's finalizer as a pure function: a strong 64-bit mixer.
std::uint64_t mix64(std::uint64_t x);

/// Derives one seed from an ordered tuple of 64-bit keys by chaining
/// mix64 over a hash-combine accumulator. This is the counter-based
/// split used by the parallel experiment harness: the result is a pure
/// function of the key tuple — no generator state is consumed — so any
/// scheduling of the keyed work items reproduces identical streams.
/// Distinct tuples (including different lengths) decorrelate.
std::uint64_t derive_seed(std::initializer_list<std::uint64_t> keys);

/// FNV-1a 64-bit string hash. Stable across platforms and runs; used to
/// fold ALU names into derived seeds.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace nbx
