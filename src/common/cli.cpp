#include "common/cli.hpp"

#include <cstdlib>

namespace nbx {

CliArgs::CliArgs(int argc, const char* const* argv)
    : CliArgs(argc, argv, {}) {}

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& boolean_flags) {
  if (argc > 0) {
    program_ = argv[0];
  }
  const auto is_boolean = [&](const std::string& name) {
    for (const std::string& b : boolean_flags) {
      if (b == name) {
        return true;
      }
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag; bare
    // boolean otherwise. Declared boolean flags never take a value.
    if (!is_boolean(body) && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::optional<std::int64_t> CliArgs::get_int(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  return v;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  return get_int(name).value_or(fallback);
}

std::optional<double> CliArgs::get_double(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  return get_double(name).value_or(fallback);
}

std::vector<std::string> CliArgs::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      out.push_back(name);
    }
  }
  return out;
}

std::string CliArgs::unknown_flag_message(
    const std::vector<std::string>& known) const {
  std::string out;
  for (const std::string& f : unknown_flags(known)) {
    if (!out.empty()) {
      out += "; ";
    }
    out += "unknown flag '--" + f + "'";
  }
  return out;
}

std::string CliArgs::invalid_number_message(const std::string& name,
                                            bool as_double) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return {};
  }
  const bool ok =
      as_double ? get_double(name).has_value() : get_int(name).has_value();
  if (ok) {
    return {};
  }
  return "invalid value for --" + name + ": '" + it->second + "'";
}

}  // namespace nbx
