// stats.hpp — small statistics helpers for experiment result aggregation.
//
// The paper reports each plotted point as the mean of ten samples (five
// trials of each of two workloads) and remarks on the standard deviation
// of those samples (§5). RunningStats provides exactly that: streaming
// mean / sample standard deviation via Welford's method.
#pragma once

#include <cstddef>
#include <vector>

namespace nbx {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long streams; O(1) space.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }

  /// Sample variance (divides by n-1); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: mean of a vector (0 for empty).
double mean_of(const std::vector<double>& xs);

/// Convenience: sample standard deviation of a vector (0 for size < 2).
double stddev_of(const std::vector<double>& xs);

/// Half-width of a 95% confidence interval on the mean of n samples with
/// the given sample standard deviation, using Student's t quantiles for
/// small n (the paper's points average n = 10 samples). Returns 0 for
/// n < 2.
double ci95_half_width(double stddev, std::size_t n);

}  // namespace nbx
