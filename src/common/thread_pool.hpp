// thread_pool.hpp — a small fixed-size worker pool for the experiment
// harness.
//
// The fault-injection sweeps are embarrassingly parallel at trial
// granularity (every trial owns its RNG, mask buffers and result slot),
// so the pool only needs one primitive: parallel_for over an index
// range with dynamic chunked scheduling. Determinism is NOT the pool's
// job — callers must make body(i) a pure function of i (the harness
// derives per-trial seeds counter-style, see MaskGenerator::trial_seed)
// and write results into per-index slots; then any thread count and any
// scheduling order produce bit-identical output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nbx {

namespace obs {
class MetricCounter;
}  // namespace obs

/// Resolves a requested thread count: 0 means "all hardware threads"
/// (at least 1); anything else is returned unchanged.
unsigned resolve_threads(unsigned requested);

/// Fixed-size pool of persistent worker threads plus the calling thread.
class ThreadPool {
 public:
  /// `threads` is the total concurrency including the caller's thread:
  /// the pool spawns threads-1 workers. 0 = hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (spawned workers + the calling thread).
  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(i) for every i in [0, n), distributing chunks of `chunk`
  /// consecutive indices from a shared counter. The calling thread
  /// participates; returns after every index has completed. `chunk` 0
  /// picks a heuristic (~4 chunks per thread). body must be safe to
  /// call concurrently for distinct i.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Grab chunks until the current job is exhausted. is_worker marks
  /// calls from spawned workers (for the steals metric) vs the caller.
  void drain(bool is_worker);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< workers wait for a new epoch
  std::condition_variable done_cv_;  ///< caller waits for epoch completion
  std::uint64_t epoch_ = 0;          ///< bumped once per parallel_for
  std::size_t finished_ = 0;         ///< workers done with current epoch
  bool stop_ = false;

  // Current job (valid for the duration of one parallel_for call).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};

  // Metric handles, resolved per parallel_for when a registry is
  // attached (null otherwise — the zero-overhead-off switch). Valid for
  // the duration of one job, like body_.
  obs::MetricCounter* chunks_metric_ = nullptr;
  obs::MetricCounter* steals_metric_ = nullptr;
  obs::MetricCounter* busy_us_metric_ = nullptr;
};

}  // namespace nbx
