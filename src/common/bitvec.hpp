// bitvec.hpp — dynamic bit vector used for LUT bit strings and fault masks.
//
// The NanoBox fault-injection model (paper §4, Figure 6) flips stored state
// by XORing a randomly generated mask onto "bit strings": the truth-table
// contents of lookup tables, the nodes of a gate-level netlist, or the
// stored inter-operation results of a time-redundant ALU. BitVec is the one
// representation all of those share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nbx {

/// A fixed-size (after construction) vector of bits with word-parallel
/// bulk operations. Bits are indexed from 0; out-of-range access is a
/// programmer error checked by assertions in debug builds.
class BitVec {
 public:
  BitVec() = default;

  /// Creates a vector of `n` bits, all zero.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Creates a vector from a string of '0'/'1' characters, MSB-first
  /// convenience for tests: "1011" => bit3=1, bit2=0, bit1=1, bit0=1.
  static BitVec from_string(const std::string& s);

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Reads bit `i`.
  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Writes bit `i`.
  void set(std::size_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= m;
    } else {
      words_[i >> 6] &= ~m;
    }
  }

  /// Flips bit `i` (the fundamental fault-injection primitive).
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// XORs `other` into this vector; sizes must match. This is the paper's
  /// Figure 6 operation: state ^= fault_mask.
  void xor_with(const BitVec& other);

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const;

  /// Sets every bit to zero without reallocating.
  void clear_all();

  /// True if any bit is set.
  [[nodiscard]] bool any() const;

  /// Equality compares size and every bit.
  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// MSB-first string rendering, inverse of from_string.
  [[nodiscard]] std::string to_string() const;

  /// Extracts bits [lo, lo+n) as an integer, bit lo = LSB. n must be <= 64.
  [[nodiscard]] std::uint64_t extract(std::size_t lo, std::size_t n) const;

  /// Deposits the low `n` bits of `v` at [lo, lo+n). n must be <= 64.
  void deposit(std::size_t lo, std::size_t n, std::uint64_t v);

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  void mask_tail();
};

}  // namespace nbx
