#include "common/bitvec.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace nbx {

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[s.size() - 1 - i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitVec::from_string: expected only 0/1");
    }
    v.set(i, c == '1');
  }
  return v;
}

void BitVec::xor_with(const BitVec& other) {
  assert(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

void BitVec::clear_all() {
  for (auto& w : words_) {
    w = 0;
  }
}

bool BitVec::any() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) {
      return true;
    }
  }
  return false;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) {
      s[size_ - 1 - i] = '1';
    }
  }
  return s;
}

std::uint64_t BitVec::extract(std::size_t lo, std::size_t n) const {
  assert(n <= 64 && lo + n <= size_);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(get(lo + i)) << i;
  }
  return v;
}

void BitVec::deposit(std::size_t lo, std::size_t n, std::uint64_t v) {
  assert(n <= 64 && lo + n <= size_);
  for (std::size_t i = 0; i < n; ++i) {
    set(lo + i, (v >> i) & 1u);
  }
}

void BitVec::mask_tail() {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace nbx
