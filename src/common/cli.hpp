// cli.hpp — a minimal command-line flag parser for the example tools.
//
// Supports `--key value`, `--key=value`, bare boolean `--flag`, and
// positional arguments. No external dependencies; just enough for
// nbxsim-style front-ends.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nbx {

/// Parsed command line.
class CliArgs {
 public:
  /// Parses argv. Unknown flags are retained (validate() reports them).
  CliArgs(int argc, const char* const* argv);

  /// Like the two-argument form, but flags named in `boolean_flags`
  /// never consume the following token as a value — required when a
  /// bare flag can precede a positional argument ("--gate FILE.json").
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& boolean_flags);

  /// The program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// True if `--name` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of `--name`, or `fallback`.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;

  /// Integer value of `--name`; nullopt if absent or unparsable.
  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& name) const;
  /// Integer with fallback.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Double value of `--name`; nullopt if absent or unparsable.
  [[nodiscard]] std::optional<double> get_double(
      const std::string& name) const;
  /// Double with fallback.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Returns the flags that are not in `known` (for usage errors).
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

  /// The canonical exit-2 diagnostic for unknown flags: one
  /// "unknown flag '--name'" clause per offender, "; "-joined. Empty
  /// when every flag is known — callers print and exit 2 iff non-empty,
  /// and the offending flag is always named.
  [[nodiscard]] std::string unknown_flag_message(
      const std::vector<std::string>& known) const;

  /// The canonical exit-2 diagnostic for a present flag whose value is
  /// not a number: "invalid value for --name: 'text'". Empty when the
  /// flag is absent or its value parses as the requested type (int by
  /// default, double with `as_double`). Catches the silent-fallback
  /// trap where `--threads abc` used to behave like an absent flag.
  [[nodiscard]] std::string invalid_number_message(
      const std::string& name, bool as_double = false) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name -> value ("" if bare)
  std::vector<std::string> positional_;
};

}  // namespace nbx
