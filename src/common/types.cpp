#include "common/types.hpp"

namespace nbx {

std::uint8_t golden_alu(Opcode op, std::uint8_t a, std::uint8_t b) {
  switch (op) {
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kAdd:
      return static_cast<std::uint8_t>(a + b);
  }
  return 0;  // unreachable for valid opcodes
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAnd:
      return "AND";
    case Opcode::kOr:
      return "OR";
    case Opcode::kXor:
      return "XOR";
    case Opcode::kAdd:
      return "ADD";
  }
  return "???";
}

bool opcode_is_valid(std::uint8_t bits) {
  switch (bits & 0b111) {
    case 0b000:
    case 0b001:
    case 0b010:
    case 0b111:
      return true;
    default:
      return false;
  }
}

}  // namespace nbx
