#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace nbx {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound != 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

Rng Rng::split(std::uint64_t stream) const {
  // Derive a child seed that depends on both the parent seed and the
  // stream index; SplitMix64's avalanche decorrelates adjacent streams.
  SplitMix64 sm(seed_ ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.next());
}

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::initializer_list<std::uint64_t> keys) {
  // Hash-combine chain with a full-avalanche mixer per key. Seeding the
  // accumulator with the golden ratio keeps the empty tuple nonzero.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t k : keys) {
    h = mix64(h ^ (k + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: k insertions into a set, no O(n) scratch space.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace nbx
