#include "common/batch_bitvec.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace nbx {

std::size_t lane_words_for(unsigned lanes) {
  assert(lanes >= 1 && lanes <= kMaxBatchLanes);
  const auto words =
      static_cast<std::size_t>((lanes + kLanesPerWord - 1) / kLanesPerWord);
  return std::bit_ceil(words);
}

void BatchBitVec::clear_all() {
  std::fill(words_.begin(), words_.end(), std::uint64_t{0});
}

void BatchBitVec::reshape(std::size_t sites, std::size_t lane_words) {
  assert(lane_words >= 1 && lane_words <= kMaxLaneWords);
  sites_ = sites;
  lane_words_ = lane_words;
  const std::size_t need = sites * lane_words;
  if (words_.size() < need) {
    words_.resize(need, 0);
  }
  clear_all();
}

void BatchBitVec::extract_lane(unsigned lane, std::size_t offset,
                               BitVec& out) const {
  assert(lane < lane_words_ * kLanesPerWord);
  assert(offset + out.size() <= sites_);
  const std::uint64_t* w =
      words_.data() + offset * lane_words_ + lane / kLanesPerWord;
  const unsigned bit = lane % kLanesPerWord;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.set(i, (w[i * lane_words_] >> bit) & 1u);
  }
}

}  // namespace nbx
