#include "common/batch_bitvec.hpp"

#include <algorithm>
#include <cassert>

namespace nbx {

void BatchBitVec::clear_all() {
  std::fill(words_.begin(), words_.end(), std::uint64_t{0});
}

void BatchBitVec::extract_lane(unsigned lane, std::size_t offset,
                               BitVec& out) const {
  assert(lane < kMaxBatchLanes);
  assert(offset + out.size() <= words_.size());
  const std::uint64_t* w = words_.data() + offset;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.set(i, (w[i] >> lane) & 1u);
  }
}

}  // namespace nbx
