// batch_bitvec.hpp — lane-sliced bit storage for the bit-parallel batched
// trial engine.
//
// Classic parallel-pattern fault simulation packs many independent
// patterns into one machine word; here the packed dimension is the Monte
// Carlo *trial*. A BatchBitVec holds one 64-bit word per fault site, and
// bit L of that word is the site's value in trial lane L. The scalar
// engine's BitVec is the transpose (site-packed, one trial); extracting a
// lane of a BatchBitVec yields exactly the BitVec that trial would have
// seen, which is what makes the batched engine bit-identical to the
// scalar one (see tests/sim/batch_differential_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"

namespace nbx {

/// Maximum trial lanes a batch can pack: one per bit of the lane word.
inline constexpr unsigned kMaxBatchLanes = 64;

/// Broadcasts a scalar bit across all 64 lanes.
inline std::uint64_t lane_broadcast(bool v) {
  return v ? ~std::uint64_t{0} : std::uint64_t{0};
}

/// Per-lane 2:1 mux: lane L of the result is hi's lane when sel's lane is
/// 1, else lo's lane. The workhorse of the mux-tree LUT evaluation.
inline std::uint64_t lane_blend(std::uint64_t lo, std::uint64_t hi,
                                std::uint64_t sel) {
  return lo ^ ((lo ^ hi) & sel);
}

/// Word with the low `lanes` lane bits set (the "active lanes" mask of a
/// possibly partial batch). lanes must be in [1, 64].
inline std::uint64_t lane_mask_for(unsigned lanes) {
  return lanes >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << lanes) - 1;
}

/// A sites x 64-lane bit matrix stored site-major: word(s) holds site s
/// across every lane. Used for batched fault masks: the mask generator
/// writes each lane's fresh mask into its bit column, and lane-sliced
/// evaluators consume whole words.
class BatchBitVec {
 public:
  BatchBitVec() = default;

  /// Creates a matrix of `sites` words, all lanes zero.
  explicit BatchBitVec(std::size_t sites) : words_(sites, 0) {}

  /// Number of fault sites (rows).
  [[nodiscard]] std::size_t sites() const { return words_.size(); }
  [[nodiscard]] bool empty() const { return words_.empty(); }

  /// All lanes of one site.
  [[nodiscard]] std::uint64_t word(std::size_t site) const {
    return words_[site];
  }
  [[nodiscard]] std::uint64_t& word(std::size_t site) {
    return words_[site];
  }

  /// Single (site, lane) bit accessors — the scalar BitVec analogues.
  [[nodiscard]] bool get(std::size_t site, unsigned lane) const {
    return (words_[site] >> lane) & 1u;
  }
  void set(std::size_t site, unsigned lane, bool v) {
    const std::uint64_t m = std::uint64_t{1} << lane;
    if (v) {
      words_[site] |= m;
    } else {
      words_[site] &= ~m;
    }
  }
  void flip(std::size_t site, unsigned lane) {
    words_[site] ^= std::uint64_t{1} << lane;
  }

  /// Zeroes every lane of every site without reallocating.
  void clear_all();

  /// Copies sites [offset, offset + out.size()) of lane `lane` into the
  /// site-packed scalar vector `out` — the transpose a scalar evaluator
  /// (or a fallback path) consumes.
  void extract_lane(unsigned lane, std::size_t offset, BitVec& out) const;

  /// Raw word array (size sites()), for bulk lane-sliced consumers.
  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace nbx
