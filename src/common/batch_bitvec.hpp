// batch_bitvec.hpp — lane-sliced bit storage for the bit-parallel batched
// trial engine.
//
// Classic parallel-pattern fault simulation packs many independent
// patterns into one machine word; here the packed dimension is the Monte
// Carlo *trial*. A BatchBitVec holds `lane_words` 64-bit words per fault
// site (a contiguous row), and bit L%64 of row word L/64 is the site's
// value in trial lane L. With one lane word this is the original 64-lane
// layout; with 2/4/8 lane words a row is exactly one 128/256/512-bit
// vector register, which is what the SIMD lane engine (src/simd/) loads
// per site. The scalar engine's BitVec is the transpose (site-packed,
// one trial); extracting a lane of a BatchBitVec yields exactly the
// BitVec that trial would have seen, which is what makes the batched
// engine bit-identical to the scalar one (see
// tests/sim/batch_differential_test.cpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"

namespace nbx {

/// Trial lanes per 64-bit lane word.
inline constexpr unsigned kLanesPerWord = 64;

/// Maximum lane words per site row (one 512-bit vector register).
inline constexpr std::size_t kMaxLaneWords = 8;

/// Maximum trial lanes a batch can pack: kMaxLaneWords words of 64.
inline constexpr unsigned kMaxBatchLanes = kLanesPerWord * kMaxLaneWords;

/// Broadcasts a scalar bit across all 64 lanes of one lane word.
inline std::uint64_t lane_broadcast(bool v) {
  return v ? ~std::uint64_t{0} : std::uint64_t{0};
}

/// Per-lane 2:1 mux: lane L of the result is hi's lane when sel's lane is
/// 1, else lo's lane. The workhorse of the mux-tree LUT evaluation.
inline std::uint64_t lane_blend(std::uint64_t lo, std::uint64_t hi,
                                std::uint64_t sel) {
  return lo ^ ((lo ^ hi) & sel);
}

/// Word with the low `lanes` lane bits set (the "active lanes" mask of a
/// possibly partial batch). lanes must be in [1, 64].
inline std::uint64_t lane_mask_for(unsigned lanes) {
  return lanes >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << lanes) - 1;
}

/// Lane words needed for `lanes` trial lanes, rounded up to a power of
/// two so a site row is always a whole 64/128/256/512-bit register:
/// 1..64 -> 1, 65..128 -> 2, 129..256 -> 4, 257..512 -> 8.
[[nodiscard]] std::size_t lane_words_for(unsigned lanes);

/// A sites x (64 * lane_words)-lane bit matrix stored site-major:
/// row(s) holds site s across every lane as `lane_words` contiguous
/// words. Used for batched fault masks: the mask generator writes each
/// lane's fresh mask into its bit column, and lane-sliced evaluators
/// consume whole rows.
class BatchBitVec {
 public:
  BatchBitVec() = default;

  /// Creates a matrix of `sites` rows of `lane_words` words, all zero.
  explicit BatchBitVec(std::size_t sites, std::size_t lane_words = 1)
      : sites_(sites), lane_words_(lane_words),
        words_(sites * lane_words, 0) {
    assert(lane_words >= 1 && lane_words <= kMaxLaneWords);
  }

  /// Number of fault sites (rows).
  [[nodiscard]] std::size_t sites() const { return sites_; }
  /// Words per site row (the lane capacity is 64 * lane_words()).
  [[nodiscard]] std::size_t lane_words() const { return lane_words_; }
  [[nodiscard]] bool empty() const { return sites_ == 0; }

  /// The first 64 lanes of one site — the historical single-word
  /// accessor, valid only for lane_words() == 1 layouts (all the legacy
  /// 64-lane evaluators).
  [[nodiscard]] std::uint64_t word(std::size_t site) const {
    assert(lane_words_ == 1);
    return words_[site];
  }
  [[nodiscard]] std::uint64_t& word(std::size_t site) {
    assert(lane_words_ == 1);
    return words_[site];
  }

  /// All lanes of one site: `lane_words()` contiguous words.
  [[nodiscard]] const std::uint64_t* row(std::size_t site) const {
    return words_.data() + site * lane_words_;
  }
  [[nodiscard]] std::uint64_t* row(std::size_t site) {
    return words_.data() + site * lane_words_;
  }

  /// Single (site, lane) bit accessors — the scalar BitVec analogues.
  [[nodiscard]] bool get(std::size_t site, unsigned lane) const {
    return (words_[site * lane_words_ + lane / kLanesPerWord] >>
            (lane % kLanesPerWord)) &
           1u;
  }
  void set(std::size_t site, unsigned lane, bool v) {
    std::uint64_t& w =
        words_[site * lane_words_ + lane / kLanesPerWord];
    const std::uint64_t m = std::uint64_t{1} << (lane % kLanesPerWord);
    if (v) {
      w |= m;
    } else {
      w &= ~m;
    }
  }
  void flip(std::size_t site, unsigned lane) {
    words_[site * lane_words_ + lane / kLanesPerWord] ^=
        std::uint64_t{1} << (lane % kLanesPerWord);
  }

  /// Zeroes every lane of every site without reallocating.
  void clear_all();

  /// Re-dimensions to (sites, lane_words) and zeroes every bit. Never
  /// shrinks the underlying capacity, so repeated reshape() to the same
  /// (or smaller) dimensions allocates nothing — the per-worker arena
  /// in the trial engine depends on this.
  void reshape(std::size_t sites, std::size_t lane_words);

  /// Copies sites [offset, offset + out.size()) of lane `lane` into the
  /// site-packed scalar vector `out` — the transpose a scalar evaluator
  /// (or a fallback path) consumes.
  void extract_lane(unsigned lane, std::size_t offset, BitVec& out) const;

  /// Raw word array (size sites() * lane_words(), site-major rows), for
  /// bulk lane-sliced consumers.
  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* data() { return words_.data(); }

 private:
  std::size_t sites_ = 0;
  std::size_t lane_words_ = 1;
  std::vector<std::uint64_t> words_;
};

}  // namespace nbx
