#include "cell/processor_cell.hpp"

#include <cassert>

#include "coding/majority.hpp"

namespace nbx {

Port port_for(RouteDecision d) {
  switch (d) {
    case RouteDecision::kSendLeft:
      return Port::kLeft;
    case RouteDecision::kSendRight:
      return Port::kRight;
    case RouteDecision::kSendUp:
      return Port::kTop;
    case RouteDecision::kSendDown:
      return Port::kBottom;
    case RouteDecision::kKeepHere:
      break;
  }
  assert(false && "kKeepHere has no port");
  return Port::kTop;
}

ProcessorCell::ProcessorCell(CellId id, const CellConfig& config)
    : id_(id), config_(config), memory_(config.memory_words),
      decode_(config.control_coding, config.control_fault_percent,
              config.seed ^ 0xC0117201u),
      execute_(config.alu_coding),
      rng_(config.seed ^ (static_cast<std::uint64_t>(id.packed()) << 32)) {
  // Manufacture the execute stage's fabric from the cell RNG — the
  // exact draw sequence of the historical monolithic constructor.
  execute_.manufacture(config.alu_defect_density, config.alu_spare_sites,
                       config.remap_defects, rng_);
  execute_.set_fault_percent(config.alu_fault_percent);
}

void ProcessorCell::set_mode(CellMode m) {
  mode_ = m;
  scan_ptr_ = 0;
  if (m == CellMode::kShiftOut) {
    shift_out_ptr_ = 0;
    sent_initial_shift_out_ = false;
  }
}

void ProcessorCell::receive_flit(Port from, std::uint8_t flit) {
  if (!alive_ && !router_survives_) {
    return;  // completely dead cell: the bus drives into nothing
  }
  if (!in_flits_[static_cast<std::size_t>(from)].push_back(flit)) {
    ++stats_.dropped_ring_overflow;
  }
}

std::optional<std::uint8_t> ProcessorCell::pop_output(Port to) {
  auto& q = out_flits_[static_cast<std::size_t>(to)];
  if (q.empty()) {
    return std::nullopt;
  }
  const std::uint8_t f = q.front();
  q.pop_front();
  return f;
}

void ProcessorCell::note_error(std::uint64_t n) {
  stats_.errors += n;
  if (alive_ && stats_.errors > config_.error_threshold) {
    // §2.3: the cell exceeded its error threshold; it stops beating so
    // the watchdog will disable it.
    alive_ = false;
  }
}

void ProcessorCell::step() {
  if (!alive_ && !router_survives_) {
    return;
  }
  if (alive_) {
    ++heartbeat_;
    ++stats_.cycles;
  }
  process_incoming();
  if (alive_) {
    if (config_.memory_upsets_per_cycle > 0.0) {
      // Poisson-ish: inject one upset with the configured probability
      // (rates << 1 per cycle in all experiments).
      if (rng_.bernoulli(config_.memory_upsets_per_cycle)) {
        memory_.inject_upsets(rng_, 1);
      }
    }
    if (config_.scrub_interval != 0 &&
        heartbeat_ % config_.scrub_interval == 0) {
      stats_.scrub_repairs += memory_.scrub();
    }
    switch (mode_) {
      case CellMode::kShiftIn:
        break;  // shift-in work happens in process_incoming()
      case CellMode::kCompute:
        step_compute();
        break;
      case CellMode::kShiftOut:
        step_shift_out();
        break;
    }
  }
}

void ProcessorCell::process_incoming() {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    auto& q = in_flits_[p];
    if (q.empty()) {
      continue;
    }
    // One flit per bus per cycle.
    const std::uint8_t flit = q.front();
    q.pop_front();
    if (auto pkt = assemblers_[p].push(flit)) {
      handle_packet(static_cast<Port>(p), *pkt);
    }
  }
}

void ProcessorCell::queue_flits(
    FlitRing& q, const std::array<std::uint8_t, kPacketFlits>& flits) {
  for (const std::uint8_t f : flits) {
    if (!q.push_back(f)) {
      ++stats_.dropped_ring_overflow;
    }
  }
}

void ProcessorCell::handle_packet(Port from, const Packet& p) {
  // Dead-but-salvageable cells still route traffic around themselves;
  // they no longer accept work.
  if (p.kind == PacketKind::kResult && mode_ == CellMode::kShiftOut) {
    // §3.2.3: incoming result packets (necessarily from below) are passed
    // straight up, taking priority over the cell's own packets.
    (void)from;
    queue_flits(out_flits_[static_cast<std::size_t>(Port::kTop)],
                encode_packet_flits(p));
    ++stats_.packets_forwarded;
    trace_event(TraceEvent::kPacketForwarded, p.instr_id);
    return;
  }
  const RouteDecision d =
      alive_ ? decode_.route(id_, p.dest) : golden_route(id_, p.dest);
  if (d == RouteDecision::kKeepHere) {
    if (!alive_) {
      return;  // disabled cell: traffic for it is already rerouted by the
               // watchdog; drop anything stale
    }
    if (p.kind == PacketKind::kInstruction ||
        p.kind == PacketKind::kSalvage) {
      store_instruction(p);
      if (p.kind == PacketKind::kSalvage) {
        ++stats_.salvage_received;
      }
    }
    return;
  }
  forward_packet(p, d);
}

void ProcessorCell::store_instruction(const Packet& p) {
  MemoryWord w;
  w.instr_id = p.instr_id;
  w.op = p.op;
  w.operand1 = p.operand1;
  w.operand2 = p.operand2;
  w.set_result(p.result);
  w.set_valid(true);
  w.set_pending(true);
  if (memory_.store(w)) {
    ++stats_.packets_stored;
    trace_event(TraceEvent::kPacketStored, p.instr_id);
  } else {
    ++stats_.dropped_full_memory;
    note_error();
  }
}

void ProcessorCell::forward_packet(const Packet& p, RouteDecision d) {
  queue_flits(out_flits_[static_cast<std::size_t>(port_for(d))],
              encode_packet_flits(p));
  ++stats_.packets_forwarded;
  trace_event(TraceEvent::kPacketForwarded, p.instr_id);
}

std::uint8_t ProcessorCell::compute_pass(Opcode op, std::uint8_t a,
                                         std::uint8_t b) {
  ModuleStats stats;
  const std::uint8_t r = execute_.pass(op, a, b, rng_, &stats);
  if (stats.lut.tmr_disagreements != 0) {
    stats_.masked_alu_faults += stats.lut.tmr_disagreements;
    if (config_.count_masked_faults) {
      note_error(stats.lut.tmr_disagreements);
    }
  }
  return r;
}

void ProcessorCell::step_compute() {
  // The degenerate 1-deep pipeline (§3.2.2): fetch scans one word,
  // decode runs the aluctrl gate, execute produces the three result
  // copies, writeback retires the word — the same draws in the same
  // order as the historical monolithic pass.
  if (memory_.capacity() == 0) {
    return;
  }
  MemoryWord& w = fetch_.scan(memory_, scan_ptr_);
  if (w.has_internal_disagreement()) {
    ++stats_.memory_disagreements;
    note_error();
  }
  if (!decode_.should_compute(w)) {
    return;
  }
  // Three copies of the result are generated (module-level redundancy);
  // the majority vote happens at shift-out time (§3.2.3).
  for (std::size_t i = 0; i < 3; ++i) {
    w.result[i] = compute_pass(w.op, w.operand1, w.operand2);
  }
  writeback_.retire(w);
  ++stats_.instructions_computed;
  trace_event(TraceEvent::kComputed, w.instr_id);
}

void ProcessorCell::emit_result_packet(MemoryWord& w) {
  Packet p;
  p.kind = PacketKind::kResult;
  p.dest = CellId{0xF, id_.col};  // toward the control processor (top)
  p.source = id_;
  p.instr_id = w.instr_id;
  p.op = w.op;
  p.operand1 = w.operand1;
  p.operand2 = w.operand2;
  p.result = w.voted_result();
  queue_flits(out_flits_[static_cast<std::size_t>(Port::kTop)],
              encode_packet_flits(p));
  w.set_valid(false);  // the slot is free once its result left the cell
  ++stats_.results_emitted;
  trace_event(TraceEvent::kResultEmitted, p.instr_id);
}

void ProcessorCell::step_shift_out() {
  // Own packets are emitted only when the upward bus is idle; forwarded
  // traffic from below was already queued by handle_packet and takes
  // priority (§3.2.3).
  auto& up = out_flits_[static_cast<std::size_t>(Port::kTop)];
  if (!up.empty()) {
    return;
  }
  while (shift_out_ptr_ < memory_.capacity()) {
    MemoryWord& w = memory_.word(shift_out_ptr_);
    if (w.valid() && !w.pending()) {
      emit_result_packet(w);
      ++shift_out_ptr_;
      return;
    }
    ++shift_out_ptr_;
  }
}

void ProcessorCell::force_fail(bool router_survives) {
  alive_ = false;
  router_survives_ = router_survives;
}

bool ProcessorCell::load_program(const std::vector<Instruction>& program) {
  PipelineConfig cfg = config_.pipeline;
  // Per-cell derived seed: deterministic in (cell seed, pipeline seed,
  // cell id), independent of the cell's other RNG streams.
  cfg.seed = derive_seed({config_.seed, config_.pipeline.seed,
                          static_cast<std::uint64_t>(id_.packed())});
  pipeline_ = std::make_unique<CellPipeline>(cfg, id_);
  pipeline_->set_trace(trace_);
  return pipeline_->load(program);
}

PipelineRunResult ProcessorCell::run_program(std::size_t max_cycles) {
  assert(pipeline_ != nullptr && "load_program first");
  return pipeline_->run(max_cycles);
}

std::vector<MemoryWord> ProcessorCell::salvage_words() {
  std::vector<MemoryWord> out;
  if (!router_survives_) {
    return out;  // §2.3: salvage requires a functioning router and memory
  }
  for (std::size_t i = 0; i < memory_.capacity(); ++i) {
    MemoryWord& w = memory_.word(i);
    if (w.valid()) {
      out.push_back(w);
      w.set_valid(false);
    }
  }
  if (pipeline_ != nullptr) {
    // §2.3 extended to the program pipeline: in-flight instructions are
    // handed to the neighbours along with the memory words.
    for (const MemoryWord& w : pipeline_->salvage_words()) {
      out.push_back(w);
      trace_event(TraceEvent::kWordSalvaged, w.instr_id);
    }
  }
  return out;
}

bool ProcessorCell::quiescent() const {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    if (!in_flits_[p].empty() || !out_flits_[p].empty() ||
        assemblers_[p].mid_packet()) {
      return false;
    }
  }
  return true;
}

}  // namespace nbx
