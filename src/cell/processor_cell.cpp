#include "cell/processor_cell.hpp"

#include <cassert>

#include "coding/majority.hpp"
#include "fault/remap.hpp"

namespace nbx {

Port port_for(RouteDecision d) {
  switch (d) {
    case RouteDecision::kSendLeft:
      return Port::kLeft;
    case RouteDecision::kSendRight:
      return Port::kRight;
    case RouteDecision::kSendUp:
      return Port::kTop;
    case RouteDecision::kSendDown:
      return Port::kBottom;
    case RouteDecision::kKeepHere:
      break;
  }
  assert(false && "kKeepHere has no port");
  return Port::kTop;
}

ProcessorCell::ProcessorCell(CellId id, const CellConfig& config)
    : id_(id), config_(config), memory_(config.memory_words),
      control_(config.control_coding, config.control_fault_percent,
               config.seed ^ 0xC0117201u),
      alu_(config.alu_coding),
      alu_defects_(0),
      alu_mask_gen_(0, 0.0),
      rng_(config.seed ^ (static_cast<std::uint64_t>(id.packed()) << 32)) {
  alu_golden_bits_ = alu_.golden_storage();
  // The manufactured fabric is the logical fault-site window plus any
  // spare pool; with neither spares nor remap this is exactly the
  // historical manufacture call (same sites, same rng draws).
  alu_defects_ = DefectMap::manufacture(
      alu_.fault_sites() + config.alu_spare_sites,
      config.alu_defect_density, rng_);
  manufactured_defects_ = alu_defects_.defect_count();
  if (config.alu_spare_sites > 0 || config.remap_defects) {
    RemapPlan plan;
    if (config.remap_defects) {
      plan = remap_around_defects(alu_defects_, alu_.fault_sites());
      remap_feasible_ = plan.feasible;
      remap_spares_used_ = plan.spares_used;
    } else {
      // Oblivious placement: storage sits on the leading window and the
      // spare pool is dead weight.
      plan.logical_to_physical.resize(alu_.fault_sites());
      for (std::size_t i = 0; i < plan.logical_to_physical.size(); ++i) {
        plan.logical_to_physical[i] = static_cast<std::uint32_t>(i);
      }
    }
    alu_defects_ = remap_logical_defects(alu_defects_, plan);
  }
  alu_mask_gen_ =
      MaskGenerator(alu_.fault_sites(), config.alu_fault_percent);
  alu_mask_ = BitVec(alu_.fault_sites());
}

void ProcessorCell::set_mode(CellMode m) {
  mode_ = m;
  scan_ptr_ = 0;
  if (m == CellMode::kShiftOut) {
    shift_out_ptr_ = 0;
    sent_initial_shift_out_ = false;
  }
}

void ProcessorCell::receive_flit(Port from, std::uint8_t flit) {
  if (!alive_ && !router_survives_) {
    return;  // completely dead cell: the bus drives into nothing
  }
  in_flits_[static_cast<std::size_t>(from)].push_back(flit);
}

std::optional<std::uint8_t> ProcessorCell::pop_output(Port to) {
  auto& q = out_flits_[static_cast<std::size_t>(to)];
  if (q.empty()) {
    return std::nullopt;
  }
  const std::uint8_t f = q.front();
  q.pop_front();
  return f;
}

void ProcessorCell::note_error(std::uint64_t n) {
  stats_.errors += n;
  if (alive_ && stats_.errors > config_.error_threshold) {
    // §2.3: the cell exceeded its error threshold; it stops beating so
    // the watchdog will disable it.
    alive_ = false;
  }
}

void ProcessorCell::step() {
  if (!alive_ && !router_survives_) {
    return;
  }
  if (alive_) {
    ++heartbeat_;
    ++stats_.cycles;
  }
  process_incoming();
  if (alive_) {
    if (config_.memory_upsets_per_cycle > 0.0) {
      // Poisson-ish: inject one upset with the configured probability
      // (rates << 1 per cycle in all experiments).
      if (rng_.bernoulli(config_.memory_upsets_per_cycle)) {
        memory_.inject_upsets(rng_, 1);
      }
    }
    if (config_.scrub_interval != 0 &&
        heartbeat_ % config_.scrub_interval == 0) {
      stats_.scrub_repairs += memory_.scrub();
    }
    switch (mode_) {
      case CellMode::kShiftIn:
        break;  // shift-in work happens in process_incoming()
      case CellMode::kCompute:
        step_compute();
        break;
      case CellMode::kShiftOut:
        step_shift_out();
        break;
    }
  }
}

void ProcessorCell::process_incoming() {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    auto& q = in_flits_[p];
    if (q.empty()) {
      continue;
    }
    // One flit per bus per cycle.
    const std::uint8_t flit = q.front();
    q.pop_front();
    if (auto pkt = assemblers_[p].push(flit)) {
      handle_packet(static_cast<Port>(p), *pkt);
    }
  }
}

void ProcessorCell::handle_packet(Port from, const Packet& p) {
  // Dead-but-salvageable cells still route traffic around themselves;
  // they no longer accept work.
  if (p.kind == PacketKind::kResult && mode_ == CellMode::kShiftOut) {
    // §3.2.3: incoming result packets (necessarily from below) are passed
    // straight up, taking priority over the cell's own packets.
    (void)from;
    const auto flits = encode_packet(p);
    auto& up = out_flits_[static_cast<std::size_t>(Port::kTop)];
    up.insert(up.end(), flits.begin(), flits.end());
    ++stats_.packets_forwarded;
    trace_event(TraceEvent::kPacketForwarded, p.instr_id);
    return;
  }
  const RouteDecision d =
      alive_ ? control_.route(id_, p.dest) : golden_route(id_, p.dest);
  if (d == RouteDecision::kKeepHere) {
    if (!alive_) {
      return;  // disabled cell: traffic for it is already rerouted by the
               // watchdog; drop anything stale
    }
    if (p.kind == PacketKind::kInstruction ||
        p.kind == PacketKind::kSalvage) {
      store_instruction(p);
      if (p.kind == PacketKind::kSalvage) {
        ++stats_.salvage_received;
      }
    }
    return;
  }
  forward_packet(p, d);
}

void ProcessorCell::store_instruction(const Packet& p) {
  MemoryWord w;
  w.instr_id = p.instr_id;
  w.op = p.op;
  w.operand1 = p.operand1;
  w.operand2 = p.operand2;
  w.set_result(p.result);
  w.set_valid(true);
  w.set_pending(true);
  if (memory_.store(w)) {
    ++stats_.packets_stored;
    trace_event(TraceEvent::kPacketStored, p.instr_id);
  } else {
    ++stats_.dropped_full_memory;
    note_error();
  }
}

void ProcessorCell::forward_packet(const Packet& p, RouteDecision d) {
  const auto flits = encode_packet(p);
  auto& q = out_flits_[static_cast<std::size_t>(port_for(d))];
  q.insert(q.end(), flits.begin(), flits.end());
  ++stats_.packets_forwarded;
  trace_event(TraceEvent::kPacketForwarded, p.instr_id);
}

std::uint8_t ProcessorCell::compute_pass(Opcode op, std::uint8_t a,
                                         std::uint8_t b) {
  // A fresh transient-fault mask per ALU pass (paper §4), with the
  // cell's manufacturing defects overlaid on top (stuck cells dominate).
  alu_mask_gen_.generate(rng_, alu_mask_);
  if (alu_defects_.defect_count() != 0) {
    alu_defects_.impose(alu_golden_bits_, alu_mask_);
  }
  ModuleStats stats;
  const std::uint8_t r = alu_.eval(
      op, a, b, MaskView(alu_mask_, 0, alu_mask_.size()), &stats);
  if (stats.lut.tmr_disagreements != 0) {
    stats_.masked_alu_faults += stats.lut.tmr_disagreements;
    if (config_.count_masked_faults) {
      note_error(stats.lut.tmr_disagreements);
    }
  }
  return r;
}

void ProcessorCell::step_compute() {
  // §3.2.2: the ALU control cycles through memory one word per visit,
  // wrapping forever while compute mode lasts.
  if (memory_.capacity() == 0) {
    return;
  }
  MemoryWord& w = memory_.word(scan_ptr_);
  scan_ptr_ = (scan_ptr_ + 1) % memory_.capacity();
  if (w.has_internal_disagreement()) {
    ++stats_.memory_disagreements;
    note_error();
  }
  if (!control_.should_compute(w)) {
    return;
  }
  // Three copies of the result are generated (module-level redundancy);
  // the majority vote happens at shift-out time (§3.2.3).
  for (std::size_t i = 0; i < 3; ++i) {
    w.result[i] = compute_pass(w.op, w.operand1, w.operand2);
  }
  w.set_pending(false);
  ++stats_.instructions_computed;
  trace_event(TraceEvent::kComputed, w.instr_id);
}

void ProcessorCell::emit_result_packet(MemoryWord& w) {
  Packet p;
  p.kind = PacketKind::kResult;
  p.dest = CellId{0xF, id_.col};  // toward the control processor (top)
  p.source = id_;
  p.instr_id = w.instr_id;
  p.op = w.op;
  p.operand1 = w.operand1;
  p.operand2 = w.operand2;
  p.result = w.voted_result();
  const auto flits = encode_packet(p);
  auto& up = out_flits_[static_cast<std::size_t>(Port::kTop)];
  up.insert(up.end(), flits.begin(), flits.end());
  w.set_valid(false);  // the slot is free once its result left the cell
  ++stats_.results_emitted;
  trace_event(TraceEvent::kResultEmitted, p.instr_id);
}

void ProcessorCell::step_shift_out() {
  // Own packets are emitted only when the upward bus is idle; forwarded
  // traffic from below was already queued by handle_packet and takes
  // priority (§3.2.3).
  auto& up = out_flits_[static_cast<std::size_t>(Port::kTop)];
  if (!up.empty()) {
    return;
  }
  while (shift_out_ptr_ < memory_.capacity()) {
    MemoryWord& w = memory_.word(shift_out_ptr_);
    if (w.valid() && !w.pending()) {
      emit_result_packet(w);
      ++shift_out_ptr_;
      return;
    }
    ++shift_out_ptr_;
  }
}

void ProcessorCell::force_fail(bool router_survives) {
  alive_ = false;
  router_survives_ = router_survives;
}

std::vector<MemoryWord> ProcessorCell::salvage_words() {
  std::vector<MemoryWord> out;
  if (!router_survives_) {
    return out;  // §2.3: salvage requires a functioning router and memory
  }
  for (std::size_t i = 0; i < memory_.capacity(); ++i) {
    MemoryWord& w = memory_.word(i);
    if (w.valid()) {
      out.push_back(w);
      w.set_valid(false);
    }
  }
  return out;
}

bool ProcessorCell::quiescent() const {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    if (!in_flits_[p].empty() || !out_flits_[p].empty() ||
        assemblers_[p].mid_packet()) {
      return false;
    }
  }
  return true;
}

}  // namespace nbx
