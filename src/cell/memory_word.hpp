// memory_word.hpp — the processor-cell memory word (paper Figure 4).
//
// Each word holds one instruction and its (triply stored) result. Paper
// §2.2: "critical fields within the memory word are stored in triplicate.
// Whenever these critical fields are accessed, the majority value of these
// triplicated fields is computed and that majority value is used."
//
// Bit layout (65 bits, LSB-first when packed for fault injection):
//   [0,16)   instruction ID
//   [16,19)  opcode
//   [19,27)  operand 1
//   [27,35)  operand 2
//   [35,43)  result copy 0
//   [43,51)  result copy 1
//   [51,59)  result copy 2
//   [59,62)  data-valid x3        (triplicated critical field)
//   [62,65)  to-be-computed x3    (triplicated critical field)
#pragma once

#include <array>
#include <cstdint>

#include "common/bitvec.hpp"
#include "common/types.hpp"

namespace nbx {

/// One cell-memory word.
struct MemoryWord {
  std::uint16_t instr_id = 0;
  Opcode op = Opcode::kAnd;
  std::uint8_t operand1 = 0;
  std::uint8_t operand2 = 0;
  std::array<std::uint8_t, 3> result = {0, 0, 0};
  std::array<bool, 3> data_valid = {false, false, false};
  std::array<bool, 3> to_be_computed = {false, false, false};

  /// Majority of the triplicated data-valid field.
  [[nodiscard]] bool valid() const;
  /// Majority of the triplicated to-be-computed field.
  [[nodiscard]] bool pending() const;
  /// Bitwise majority of the three result copies (the value shifted out).
  [[nodiscard]] std::uint8_t voted_result() const;
  /// True if any triplicated field or the result copies disagree — the
  /// cell counts these toward its error threshold.
  [[nodiscard]] bool has_internal_disagreement() const;

  /// Sets all three valid bits.
  void set_valid(bool v);
  /// Sets all three to-be-computed bits.
  void set_pending(bool v);
  /// Stores the same value into all three result copies.
  void set_result(std::uint8_t r);

  /// Total packed bits.
  static constexpr std::size_t kBits = 65;

  /// Packs into `kBits` bits at `offset` within `bits`.
  void pack(BitVec& bits, std::size_t offset) const;
  /// Unpacks from `kBits` bits at `offset`.
  static MemoryWord unpack(const BitVec& bits, std::size_t offset);

  friend bool operator==(const MemoryWord& a, const MemoryWord& b) {
    return a.instr_id == b.instr_id && a.op == b.op &&
           a.operand1 == b.operand1 && a.operand2 == b.operand2 &&
           a.result == b.result && a.data_valid == b.data_valid &&
           a.to_be_computed == b.to_be_computed;
  }
};

}  // namespace nbx
