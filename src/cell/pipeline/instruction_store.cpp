#include "cell/pipeline/instruction_store.hpp"

#include <cassert>

namespace nbx {

namespace {

// Field layout within one record copy, LSB-first.
constexpr std::size_t kIdLo = 0;
constexpr std::size_t kOpLo = 16;
constexpr std::size_t kALo = 19;
constexpr std::size_t kBLo = 27;

}  // namespace

void InstructionStore::load(const std::vector<Instruction>& program,
                            LutCoding coding, double defect_density,
                            Rng& rng) {
  count_ = program.size();
  copies_ = coding == LutCoding::kTmr ? 3 : 1;
  const std::size_t total = count_ * kRecordBits * copies_;
  bits_ = BitVec(total);
  mask_ = BitVec(record_sites());
  goldens_.resize(count_);
  record_defect_flips_.assign(count_, 0);

  for (std::size_t i = 0; i < count_; ++i) {
    const Instruction& ins = program[i];
    goldens_[i] = ins.golden;
    std::uint64_t word = 0;
    word |= static_cast<std::uint64_t>(ins.id) << kIdLo;
    word |= (static_cast<std::uint64_t>(ins.op) & 0x7u) << kOpLo;
    word |= static_cast<std::uint64_t>(ins.a) << kALo;
    word |= static_cast<std::uint64_t>(ins.b) << kBLo;
    for (std::size_t c = 0; c < copies_; ++c) {
      bits_.deposit((i * copies_ + c) * kRecordBits, kRecordBits, word);
    }
  }

  // Manufacture stuck-at defects over the whole fabric and bake them
  // in: a stuck cell reads as its stuck value on every fetch.
  const DefectMap map = DefectMap::manufacture(total, defect_density, rng);
  defects_ = map.defect_count();
  stuck_sites_ = BitVec(total);
  if (defects_ != 0) {
    for (std::size_t s = 0; s < total; ++s) {
      if (!map.is_defective(s)) {
        continue;
      }
      stuck_sites_.set(s, true);
      if (const auto flip = map.forced_flip(s, bits_.get(s));
          flip.has_value() && *flip) {
        bits_.flip(s);
        ++record_defect_flips_[s / (kRecordBits * copies_)];
      }
    }
  }
}

FetchedRecord InstructionStore::fetch(std::size_t pc,
                                      const MaskGenerator& gen, Rng& rng,
                                      std::uint64_t* bit_faults) {
  assert(pc < count_);
  assert(gen.sites() == record_sites());
  gen.generate(rng, mask_);
  const std::size_t base = pc * record_sites();
  if (defects_ != 0) {
    // Defect dominance: a stuck cell cannot also flip transiently, so
    // transient hits landing on defective sites are absorbed.
    for (std::size_t i = 0; i < record_sites(); ++i) {
      if (mask_.get(i) && stuck_sites_.get(base + i)) {
        mask_.set(i, false);
      }
    }
  }
  if (bit_faults != nullptr) {
    *bit_faults += mask_.popcount() + record_defect_flips_[pc];
  }

  // Per-bit majority over the (possibly corrupted) copies.
  std::uint64_t voted = 0;
  for (std::size_t bit = 0; bit < kRecordBits; ++bit) {
    unsigned ones = 0;
    for (std::size_t c = 0; c < copies_; ++c) {
      const std::size_t local = c * kRecordBits + bit;
      ones += (bits_.get(base + local) ^ mask_.get(local)) ? 1u : 0u;
    }
    if (ones * 2 > copies_) {
      voted |= std::uint64_t{1} << bit;
    }
  }

  FetchedRecord rec;
  rec.instr_id = static_cast<std::uint16_t>((voted >> kIdLo) & 0xFFFFu);
  rec.op_bits = static_cast<std::uint8_t>((voted >> kOpLo) & 0x7u);
  rec.a = static_cast<std::uint8_t>((voted >> kALo) & 0xFFu);
  rec.b = static_cast<std::uint8_t>((voted >> kBLo) & 0xFFu);
  return rec;
}

}  // namespace nbx
