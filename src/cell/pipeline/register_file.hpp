// register_file.hpp — the pipelined cell's small triplicated register
// file.
//
// Same protection idiom as the cell memory's triplicated fields
// (memory_word.hpp): every architectural register keeps three 8-bit
// copies; reads majority-vote bitwise, clean writes refresh all three.
// The writeback stage writes each copy independently so writeback-stage
// faults can corrupt a single copy without the other two — which the
// vote then outvotes, exactly like a masked ALU fault.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nbx {

/// Triplicated architectural registers of the cell pipeline.
class RegisterFile {
 public:
  explicit RegisterFile(std::size_t count) : regs_(count) {}

  [[nodiscard]] std::size_t size() const { return regs_.size(); }

  /// Bitwise majority over the three copies (same expression as
  /// MemoryWord::voted_result).
  [[nodiscard]] std::uint8_t read(std::size_t r) const {
    const auto& c = regs_[r];
    return static_cast<std::uint8_t>((c[0] & c[1]) | (c[0] & c[2]) |
                                     (c[1] & c[2]));
  }

  /// Clean write: refreshes all three copies.
  void write(std::size_t r, std::uint8_t v) { regs_[r] = {v, v, v}; }

  /// Faulted-writeback path: writes one copy only.
  void write_copy(std::size_t r, std::size_t copy, std::uint8_t v) {
    regs_[r][copy] = v;
  }

  /// True when the three copies of `r` are not bit-identical (a masked
  /// writeback fault is latent in the register).
  [[nodiscard]] bool has_disagreement(std::size_t r) const {
    const auto& c = regs_[r];
    return !(c[0] == c[1] && c[1] == c[2]);
  }

  /// Zeroes every register (program load).
  void reset() {
    for (auto& c : regs_) {
      c = {0, 0, 0};
    }
  }

 private:
  std::vector<std::array<std::uint8_t, 3>> regs_;
};

}  // namespace nbx
