#include "cell/pipeline/cell_pipeline.hpp"

#include <cassert>

#include "alu/alu_factory.hpp"
#include "obs/metrics.hpp"

namespace nbx {

namespace {

std::unique_ptr<IAlu> make_execute_alu(const std::string& name, bool* ok) {
  auto alu = make_alu(name);
  *ok = alu != nullptr;
  if (alu == nullptr) {
    // Keep the object constructible; load() reports the bad name.
    alu = make_alu("aluns");
  }
  return alu;
}

// Micro-op register/mode fields, shared with the architectural
// reference (see DecodedOp for the layout).
struct OpFields {
  std::uint8_t dst, mode, src1, src2;
};

OpFields fields_of(std::uint16_t id) {
  return OpFields{static_cast<std::uint8_t>(id & 0x7u),
                  static_cast<std::uint8_t>((id >> 3) & 0x3u),
                  static_cast<std::uint8_t>((id >> 5) & 0x7u),
                  static_cast<std::uint8_t>((id >> 8) & 0x7u)};
}

constexpr std::size_t stage_idx(PipeStage s) {
  return static_cast<std::size_t>(s);
}

}  // namespace

CellPipeline::CellPipeline(const PipelineConfig& config, CellId id)
    : config_(config), id_(id),
      decode_(LutCoding::kNone, 0.0, config.seed),
      execute_(make_execute_alu(config.execute_alu, &alu_ok_)),
      regs_(config.registers == 0 ? 1 : config.registers),
      fetch_rng_(0), decode_rng_(0), execute_rng_(0), writeback_rng_(0) {
  if (config_.registers == 0) {
    config_.registers = 1;
  }
}

CellPipeline::~CellPipeline() = default;

Rng CellPipeline::stage_rng(PipeStage s) const {
  return Rng(derive_seed({config_.seed, fnv1a64(pipe_stage_name(s)),
                          static_cast<std::uint64_t>(id_.packed())}));
}

bool CellPipeline::load(const std::vector<Instruction>& program) {
  if (!alu_ok_) {
    return false;
  }
  program_ = program;

  const auto rate = [&](PipeStage s) {
    return config_.stage(s).effective_percent(config_.trial_index,
                                              config_.trials);
  };

  // Manufacture: one dedicated stream, drawn in stage order, so the
  // store's defects and the ALU's defects are independent of every
  // per-stage transient stream.
  Rng manufacture(derive_seed({config_.seed, fnv1a64("manufacture"),
                               static_cast<std::uint64_t>(id_.packed())}));
  store_.load(program_, config_.store_coding,
              config_.fetch.defect_density, manufacture);
  execute_.manufacture(config_.execute.defect_density, /*spare_sites=*/0,
                       /*remap=*/false, manufacture);

  fetch_.configure(store_.record_sites(), rate(PipeStage::kFetch));
  decode_.configure(config_.decode_coding, rate(PipeStage::kDecode));
  execute_.set_fault_percent(rate(PipeStage::kExecute));
  writeback_.configure(rate(PipeStage::kWriteback));

  retired_.reserve(program_.size());
  reset();
  return true;
}

void CellPipeline::reset() {
  pc_ = 0;
  if_id_ = IfIdLatch{};
  id_ex_ = IdExLatch{};
  ex_wb_ = ExWbLatch{};
  bubble_pending_ = false;
  regs_.reset();
  counters_.reset();
  retired_.clear();
  fetch_rng_ = stage_rng(PipeStage::kFetch);
  decode_rng_ = stage_rng(PipeStage::kDecode);
  execute_rng_ = stage_rng(PipeStage::kExecute);
  writeback_rng_ = stage_rng(PipeStage::kWriteback);
}

bool CellPipeline::in_flight() const {
  return if_id_.valid || id_ex_.valid || ex_wb_.valid;
}

bool CellPipeline::cycle() {
  if (pc_ >= program_.size() && !in_flight()) {
    return false;
  }
  ++counters_.cycles;

  // ---- WB: commit the instruction executed last cycle.
  if (ex_wb_.valid) {
    auto& wb = counters_.at(stage_idx(PipeStage::kWriteback));
    ++wb.ops;
    const std::uint8_t voted = writeback_.run(
        regs_, ex_wb_.dst % config_.registers, ex_wb_.value,
        writeback_rng_, &wb.bit_faults);
    retired_.push_back(RetiredOp{ex_wb_.index, ex_wb_.instr_id, voted});
    ++counters_.retired;
    trace_event(TraceEvent::kStageWriteback, ex_wb_.instr_id);
    ex_wb_.valid = false;
  }

  // ---- EX: run the decoded instruction, if any. An empty slot left by
  // last cycle's stall or flush is a bubble (fill/drain slots are not).
  if (!id_ex_.valid && bubble_pending_) {
    ++counters_.bubbles;
  }
  bubble_pending_ = false;
  if (id_ex_.valid) {
    auto& ex = counters_.at(stage_idx(PipeStage::kExecute));
    ++ex.ops;
    ModuleStats stats;
    const AluOutput out = execute_.run(
        static_cast<Opcode>(id_ex_.op.op_bits), id_ex_.operand1,
        id_ex_.operand2, execute_rng_, &stats, &ex.bit_faults);
    ex_wb_ = ExWbLatch{true, id_ex_.index, id_ex_.op.instr_id,
                       id_ex_.op.dst, out.value, id_ex_.op};
    trace_event(TraceEvent::kStageExecute, id_ex_.op.instr_id);
    id_ex_.valid = false;
  }

  // ---- ID: decode once, then resolve operands against the register
  // file and the EX/WB latch (the only RAW-hazard distance — see the
  // header comment).
  bool stalled = false;
  if (if_id_.valid) {
    if (!if_id_.decoded) {
      auto& idc = counters_.at(stage_idx(PipeStage::kDecode));
      ++idc.ops;
      if_id_.op = decode_.run(if_id_.rec, decode_rng_, &idc.bit_faults);
      if_id_.decoded = true;
      trace_event(TraceEvent::kStageDecode, if_id_.rec.instr_id);
    }
    if (if_id_.op.flush) {
      // Misdecode: squash the instruction. It never retires — the lost
      // result scores as incorrect end to end.
      ++counters_.flushes;
      trace_event(TraceEvent::kPipelineFlush, if_id_.rec.instr_id);
      if_id_ = IfIdLatch{};
      bubble_pending_ = true;
    } else {
      const std::size_t nregs = config_.registers;
      const DecodedOp& op = if_id_.op;
      const std::size_t s1 = op.src1 % nregs;
      const std::size_t s2 = op.src2 % nregs;
      const bool reads1 = op.mode == 1 || op.mode == 3;
      const bool reads2 = op.mode == 2 || op.mode == 3;
      const bool hazard1 =
          reads1 && ex_wb_.valid && s1 == ex_wb_.dst % nregs;
      const bool hazard2 =
          reads2 && ex_wb_.valid && s2 == ex_wb_.dst % nregs;
      if ((hazard1 || hazard2) && !config_.forwarding) {
        // Hold the instruction; the bubble reaches execute next cycle.
        ++counters_.stalls;
        trace_event(TraceEvent::kPipelineStall, op.instr_id);
        stalled = true;
        bubble_pending_ = true;
      } else {
        if (hazard1 || hazard2) {
          ++counters_.forwards;
        }
        const std::uint8_t o1 =
            reads1 ? (hazard1 ? ex_wb_.value : regs_.read(s1)) : op.imm_a;
        const std::uint8_t o2 =
            reads2 ? (hazard2 ? ex_wb_.value : regs_.read(s2)) : op.imm_b;
        id_ex_ = IdExLatch{true, if_id_.index, op, o1, o2};
        if_id_ = IfIdLatch{};
      }
    }
  }

  // ---- IF: fetch the next instruction unless decode is holding.
  if (!stalled && !if_id_.valid && pc_ < program_.size()) {
    auto& ifc = counters_.at(stage_idx(PipeStage::kFetch));
    ++ifc.ops;
    const FetchedRecord rec =
        fetch_.run(store_, pc_, fetch_rng_, &ifc.bit_faults);
    if_id_ = IfIdLatch{true, pc_, rec, false, DecodedOp{}};
    trace_event(TraceEvent::kStageFetch, rec.instr_id);
    ++pc_;
  }

  return pc_ < program_.size() || in_flight();
}

PipelineRunResult CellPipeline::run(std::size_t max_cycles) {
  if (max_cycles == 0) {
    // Per instruction: at most one stall cycle on top of its own slot,
    // plus pipeline fill/drain.
    max_cycles = 2 * program_.size() + 16;
  }
  std::size_t n = 0;
  bool more = in_flight() || pc_ < program_.size();
  while (more && n < max_cycles) {
    more = cycle();
    ++n;
  }

  PipelineRunResult res;
  res.program_length = program_.size();
  res.retired = retired_.size();
  res.flushes = counters_.flushes;
  res.completed = !more;
  const std::vector<std::uint8_t> ref =
      reference_results(program_, config_.registers);
  for (const RetiredOp& r : retired_) {
    if (r.index < ref.size() && r.value == ref[r.index]) {
      ++res.correct;
    }
  }
  res.percent_correct =
      program_.empty()
          ? 100.0
          : 100.0 * static_cast<double>(res.correct) /
                static_cast<double>(program_.size());
  publish_metrics();
  return res;
}

void CellPipeline::publish_metrics() const {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) {
    return;
  }
  reg->counter("pipeline_cycles_total").add(counters_.cycles);
  reg->counter("pipeline_retired_total").add(counters_.retired);
  reg->counter("pipeline_stalls_total", {{"stage", "decode"}})
      .add(counters_.stalls);
  reg->counter("pipeline_flushes_total", {{"stage", "decode"}})
      .add(counters_.flushes);
  reg->counter("pipeline_bubbles_total", {{"stage", "execute"}})
      .add(counters_.bubbles);
  reg->counter("pipeline_forwards_total", {{"stage", "execute"}})
      .add(counters_.forwards);
  for (std::size_t i = 0; i < obs::kPipelineStageCount; ++i) {
    const std::string stage(obs::pipeline_stage_label(i));
    reg->counter("pipeline_stage_ops_total", {{"stage", stage}})
        .add(counters_.stage[i].ops);
    reg->counter("pipeline_stage_bit_faults_total", {{"stage", stage}})
        .add(counters_.stage[i].bit_faults);
  }
}

std::vector<MemoryWord> CellPipeline::salvage_words() const {
  std::vector<MemoryWord> out;
  const auto base_word = [](std::uint16_t id, std::uint8_t op_bits,
                            std::uint8_t a, std::uint8_t b) {
    MemoryWord w;
    w.instr_id = id;
    w.op = static_cast<Opcode>(op_bits & 0x7u);
    w.operand1 = a;
    w.operand2 = b;
    w.set_valid(true);
    return w;
  };
  if (if_id_.valid) {
    MemoryWord w = base_word(if_id_.rec.instr_id, if_id_.rec.op_bits,
                             if_id_.rec.a, if_id_.rec.b);
    w.set_pending(true);
    out.push_back(w);
  }
  if (id_ex_.valid) {
    MemoryWord w = base_word(id_ex_.op.instr_id, id_ex_.op.op_bits,
                             id_ex_.operand1, id_ex_.operand2);
    w.set_pending(true);
    out.push_back(w);
  }
  if (ex_wb_.valid) {
    MemoryWord w = base_word(ex_wb_.instr_id, ex_wb_.op.op_bits,
                             ex_wb_.op.imm_a, ex_wb_.op.imm_b);
    w.set_result(ex_wb_.value);
    w.set_pending(false);
    out.push_back(w);
  }
  return out;
}

std::vector<std::uint8_t> CellPipeline::reference_results(
    const std::vector<Instruction>& program, std::size_t registers) {
  if (registers == 0) {
    registers = 1;
  }
  std::vector<std::uint8_t> regs(registers, 0);
  std::vector<std::uint8_t> out;
  out.reserve(program.size());
  for (const Instruction& ins : program) {
    const OpFields f = fields_of(ins.id);
    const bool reads1 = f.mode == 1 || f.mode == 3;
    const bool reads2 = f.mode == 2 || f.mode == 3;
    const std::uint8_t o1 = reads1 ? regs[f.src1 % registers] : ins.a;
    const std::uint8_t o2 = reads2 ? regs[f.src2 % registers] : ins.b;
    const std::uint8_t v = golden_alu(ins.op, o1, o2);
    regs[f.dst % registers] = v;
    out.push_back(v);
  }
  return out;
}

}  // namespace nbx
