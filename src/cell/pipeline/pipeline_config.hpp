// pipeline_config.hpp — per-stage configuration of the pipelined cell.
//
// Paper §7 future work 3 asks what happens when the NanoBox cell grows
// from an ALU control loop into a real processor. The pipelined cell
// answers the question the architecture was built around: *which
// stage's unreliability hurts end-to-end accuracy most?* Each of the
// four stages (fetch / decode / execute / writeback) carries its own
// fault rate, wear schedule (fault/scenario.hpp) and — where the stage
// owns storage fabric — defect density, so a sweep can stress one stage
// at a time while the others stay ideal.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fault/scenario.hpp"
#include "lut/coded_lut.hpp"

namespace nbx {

/// The four pipeline stages, in program order.
enum class PipeStage : std::uint8_t {
  kFetch = 0,
  kDecode = 1,
  kExecute = 2,
  kWriteback = 3,
};

inline constexpr std::size_t kPipeStageCount = 4;

/// Every stage, for iteration (sweeps, metrics labels, tests).
inline constexpr std::array<PipeStage, kPipeStageCount> kAllPipeStages = {
    PipeStage::kFetch, PipeStage::kDecode, PipeStage::kExecute,
    PipeStage::kWriteback};

/// Stage name for metrics labels and bench tables. No default: adding a
/// stage without naming it is a compile error (-Werror=switch).
constexpr std::string_view pipe_stage_name(PipeStage s) {
  switch (s) {
    case PipeStage::kFetch:
      return "fetch";
    case PipeStage::kDecode:
      return "decode";
    case PipeStage::kExecute:
      return "execute";
    case PipeStage::kWriteback:
      return "writeback";
  }
  return "?";
}

/// Fault knobs of one pipeline stage. The transient rate follows the
/// same percent-of-sites convention as the ALU sweeps; the wear
/// schedule reuses fault/scenario.hpp verbatim so a pipelined trial
/// population ages exactly like an ALU trial population.
struct StageFaultConfig {
  double fault_percent = 0.0;  ///< % of the stage's sites flipped per use
  RateSchedule schedule;       ///< wear across a trial population
  /// Stuck-at density of the stage's storage fabric, fixed at
  /// manufacture. Only stages that own storage honour it (fetch: the
  /// instruction store; execute: the ALU's LUT fabric).
  double defect_density = 0.0;

  /// The rate this stage runs at for trial `trial` of `trials`
  /// (RateSchedule::at — identical to the engine's wear resolution).
  [[nodiscard]] double effective_percent(std::size_t trial,
                                         std::size_t trials) const {
    return schedule.at(fault_percent, trial, trials);
  }
};

/// Full configuration of a cell's program pipeline.
struct PipelineConfig {
  /// Architectural register count (micro-op fields address 8).
  std::size_t registers = 8;
  /// Forward the execute/writeback result to a dependent decode
  /// (distance-1 RAW). Off = the dependent instruction stalls one cycle.
  bool forwarding = true;
  /// The execute stage's ALU, by Table-2 catalogue name. The pipeline
  /// drives it through the IAlu interface, so any catalogued
  /// bit/module-level combination works. "aluns" = uncoded module,
  /// TMR-bit LUT fabric — the NanoBox default cell fabric.
  std::string execute_alu = "aluns";
  /// Instruction-store protection: kTmr keeps three copies of every
  /// record and majority-votes each bit at fetch; anything else keeps
  /// one unprotected copy.
  LutCoding store_coding = LutCoding::kTmr;
  /// Decoded control-word protection: kTmr triplicates the 14-bit
  /// control word and votes per bit; anything else decodes one copy.
  LutCoding decode_coding = LutCoding::kTmr;

  StageFaultConfig fetch;
  StageFaultConfig decode;
  StageFaultConfig execute;
  StageFaultConfig writeback;

  /// Wear-schedule coordinates of this cell's run within its trial
  /// population (RateSchedule::at(base, trial_index, trials)).
  std::size_t trial_index = 0;
  std::size_t trials = 1;

  std::uint64_t seed = 7;

  [[nodiscard]] const StageFaultConfig& stage(PipeStage s) const {
    switch (s) {
      case PipeStage::kFetch:
        return fetch;
      case PipeStage::kDecode:
        return decode;
      case PipeStage::kExecute:
        return execute;
      case PipeStage::kWriteback:
        return writeback;
    }
    return fetch;
  }
  [[nodiscard]] StageFaultConfig& stage(PipeStage s) {
    return const_cast<StageFaultConfig&>(
        static_cast<const PipelineConfig*>(this)->stage(s));
  }
};

}  // namespace nbx
