// instruction_store.hpp — the pipelined cell's faultable program memory.
//
// A cell program is an NBXS instruction stream (workload/
// instruction_stream.hpp) loaded into nanodevice storage: 35 bits per
// record (u16 id, 3-bit opcode, two 8-bit operands) in one or three
// copies depending on the store coding. Like every other nanodevice
// fabric in the library the store suffers both permanent stuck-at
// defects (fixed at load via a DefectMap) and per-fetch transient
// flips (a fresh MaskGenerator mask per fetch, paper §4 semantics).
// TMR-coded stores vote the three copies bit-by-bit at fetch time.
//
// The golden result bytes of the stream are NOT stored in the faultable
// fabric: they are scoring metadata, not architectural state, and a
// fault must never be able to grade its own homework.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "fault/defect_map.hpp"
#include "fault/mask_generator.hpp"
#include "lut/coded_lut.hpp"
#include "workload/instruction_stream.hpp"

namespace nbx {

/// One record as read out of the (possibly faulted) store. Fields are
/// raw: `op_bits` may decode to an undefined opcode after faults — the
/// decode stage is responsible for flushing those.
struct FetchedRecord {
  std::uint16_t instr_id = 0;
  std::uint8_t op_bits = 0;  ///< 3-bit opcode field, unvalidated
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};

/// Faultable storage for one cell program.
class InstructionStore {
 public:
  /// Stored bits per record copy: id(16) + op(3) + a(8) + b(8).
  static constexpr std::size_t kRecordBits = 35;

  InstructionStore() = default;

  /// Loads `program` into fresh fabric. `coding` kTmr keeps three
  /// copies per record; anything else one. Stuck-at defects are
  /// manufactured over every stored bit at `defect_density` using `rng`
  /// and baked into the fabric (they corrupt every subsequent fetch).
  void load(const std::vector<Instruction>& program, LutCoding coding,
            double defect_density, Rng& rng);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t copies() const { return copies_; }
  /// Transient fault sites exposed per fetch (one record, all copies).
  [[nodiscard]] std::size_t record_sites() const {
    return kRecordBits * copies_;
  }
  /// Total stored bits (defectable fabric size).
  [[nodiscard]] std::size_t total_bits() const { return bits_.size(); }
  [[nodiscard]] std::size_t defect_count() const { return defects_; }

  /// Reads record `pc` under a fresh transient mask drawn from `gen`
  /// (bound to record_sites()), votes the copies when coded, and
  /// returns the raw fields. Adds the number of flipped bits seen by
  /// this fetch (transient + defect-forced) to `*bit_faults` when
  /// non-null.
  [[nodiscard]] FetchedRecord fetch(std::size_t pc,
                                    const MaskGenerator& gen, Rng& rng,
                                    std::uint64_t* bit_faults);

  /// Golden result bytes of the loaded stream, by program index.
  [[nodiscard]] const std::vector<std::uint8_t>& goldens() const {
    return goldens_;
  }

  /// Test hook: flips one stored bit (models a stuck bit that escaped
  /// manufacture screening). Deterministic misdecode tests use this to
  /// plant an invalid opcode without relying on random masks.
  void corrupt_bit(std::size_t bit) { bits_.flip(bit); }

 private:
  std::size_t count_ = 0;
  std::size_t copies_ = 1;
  std::size_t defects_ = 0;
  BitVec bits_;         // stored (post-defect) record bits
  BitVec stuck_sites_;  // defective-site bitmap: stuck cells absorb
                        // transient hits (defect dominance)
  BitVec mask_;         // per-fetch transient scratch
  std::vector<std::uint16_t> record_defect_flips_;  // per-record, at load
  std::vector<std::uint8_t> goldens_;
};

}  // namespace nbx
