#include "cell/pipeline/stages.hpp"

#include <cassert>

#include "fault/remap.hpp"

namespace nbx {

// ---------------------------------------------------------------- decode

void DecodeStage::configure(LutCoding word_coding, double fault_percent) {
  copies_ = word_coding == LutCoding::kTmr ? 3 : 1;
  const std::size_t sites = kControlWordBits * copies_;
  gen_ = MaskGenerator(sites, fault_percent);
  mask_ = BitVec(sites);
}

DecodedOp DecodeStage::run(const FetchedRecord& rec, Rng& rng,
                           std::uint64_t* bit_faults) {
  // Control word: op(3) dst(3) mode(2) src1(3) src2(3), fields derived
  // from the instruction id (see DecodedOp).
  const std::uint16_t id = rec.instr_id;
  std::uint32_t word = 0;
  word |= static_cast<std::uint32_t>(rec.op_bits & 0x7u);
  word |= static_cast<std::uint32_t>(id & 0x7u) << 3;          // dst
  word |= static_cast<std::uint32_t>((id >> 3) & 0x3u) << 6;   // mode
  word |= static_cast<std::uint32_t>((id >> 5) & 0x7u) << 8;   // src1
  word |= static_cast<std::uint32_t>((id >> 8) & 0x7u) << 11;  // src2

  gen_.generate(rng, mask_);
  if (bit_faults != nullptr) {
    *bit_faults += mask_.popcount();
  }
  // Per-bit majority over the faulted copies.
  std::uint32_t voted = 0;
  for (std::size_t bit = 0; bit < kControlWordBits; ++bit) {
    unsigned ones = 0;
    for (std::size_t c = 0; c < copies_; ++c) {
      const bool v = (((word >> bit) & 1u) != 0) ^
                     mask_.get(c * kControlWordBits + bit);
      ones += v ? 1u : 0u;
    }
    if (ones * 2 > copies_) {
      voted |= std::uint32_t{1} << bit;
    }
  }

  DecodedOp op;
  op.instr_id = id;
  op.op_bits = static_cast<std::uint8_t>(voted & 0x7u);
  op.dst = static_cast<std::uint8_t>((voted >> 3) & 0x7u);
  op.mode = static_cast<std::uint8_t>((voted >> 6) & 0x3u);
  op.src1 = static_cast<std::uint8_t>((voted >> 8) & 0x7u);
  op.src2 = static_cast<std::uint8_t>((voted >> 11) & 0x7u);
  op.imm_a = rec.a;
  op.imm_b = rec.b;
  op.flush = !opcode_is_valid(op.op_bits);
  return op;
}

// --------------------------------------------------------------- execute

ExecuteStage::ExecuteStage(LutCoding coding)
    : lut_(std::make_unique<LutCoreAlu>(coding)) {}

ExecuteStage::ExecuteStage(std::unique_ptr<IAlu> alu)
    : ialu_(std::move(alu)) {
  assert(ialu_ != nullptr);
}

std::size_t ExecuteStage::fault_sites() const {
  return lut_ != nullptr ? lut_->fault_sites() : ialu_->fault_sites();
}

std::size_t ExecuteStage::defectable_sites() const {
  return lut_ != nullptr ? lut_->fault_sites() : ialu_->defectable_sites();
}

void ExecuteStage::manufacture(double defect_density,
                               std::size_t spare_sites, bool remap,
                               Rng& rng) {
  golden_bits_ =
      lut_ != nullptr ? lut_->golden_storage() : ialu_->golden_storage();
  // The manufactured fabric is the logical fault-site window plus any
  // spare pool; with neither spares nor remap this is exactly the
  // historical manufacture call (same sites, same rng draws).
  defects_ = DefectMap::manufacture(defectable_sites() + spare_sites,
                                    defect_density, rng);
  manufactured_ = defects_.defect_count();
  if (spare_sites > 0 || remap) {
    RemapPlan plan;
    if (remap) {
      plan = remap_around_defects(defects_, defectable_sites());
      remap_feasible_ = plan.feasible;
      spares_used_ = plan.spares_used;
    } else {
      // Oblivious placement: storage sits on the leading window and the
      // spare pool is dead weight.
      plan.logical_to_physical.resize(defectable_sites());
      for (std::size_t i = 0; i < plan.logical_to_physical.size(); ++i) {
        plan.logical_to_physical[i] = static_cast<std::uint32_t>(i);
      }
    }
    defects_ = remap_logical_defects(defects_, plan);
  }
}

void ExecuteStage::set_fault_percent(double percent) {
  gen_ = MaskGenerator(fault_sites(), percent);
  mask_ = BitVec(fault_sites());
}

std::uint8_t ExecuteStage::pass(Opcode op, std::uint8_t a, std::uint8_t b,
                                Rng& rng, ModuleStats* stats) {
  assert(lut_ != nullptr);
  // A fresh transient-fault mask per ALU pass (paper §4), with the
  // cell's manufacturing defects overlaid on top (stuck cells dominate).
  gen_.generate(rng, mask_);
  if (defects_.defect_count() != 0) {
    defects_.impose(golden_bits_, mask_);
  }
  return lut_->eval(op, a, b, MaskView(mask_, 0, mask_.size()), stats);
}

AluOutput ExecuteStage::run(Opcode op, std::uint8_t a, std::uint8_t b,
                            Rng& rng, ModuleStats* stats,
                            std::uint64_t* bit_faults) {
  assert(ialu_ != nullptr);
  gen_.generate(rng, mask_);
  if (defects_.defect_count() != 0) {
    ialu_->impose_defects(defects_, mask_);
  }
  if (bit_faults != nullptr) {
    *bit_faults += mask_.popcount();
  }
  return ialu_->compute(op, a, b, MaskView(mask_, 0, mask_.size()), stats);
}

// ------------------------------------------------------------- writeback

std::uint8_t WritebackStage::run(RegisterFile& regs, std::size_t dst,
                                 std::uint8_t value, Rng& rng,
                                 std::uint64_t* bit_faults) {
  gen_.generate(rng, mask_);
  if (bit_faults != nullptr) {
    *bit_faults += mask_.popcount();
  }
  for (std::size_t copy = 0; copy < 3; ++copy) {
    const auto flips =
        static_cast<std::uint8_t>(mask_.extract(copy * 8, 8));
    regs.write_copy(dst, copy, static_cast<std::uint8_t>(value ^ flips));
  }
  return regs.read(dst);
}

}  // namespace nbx
