// cell_pipeline.hpp — the 4-deep program pipeline of a NanoBox cell.
//
// Runs an NBXS instruction stream through fetch → decode → execute →
// writeback with cycle-accurate latches, RAW hazard handling and
// per-stage fault injection (pipeline_config.hpp). Stage order within a
// cycle is WB, EX, ID, IF — the classic in-order arrangement where a
// value written back this cycle is readable by this cycle's decode, so
// only the distance-1 producer (still in the EX/WB latch at decode
// time) can hazard:
//
//   * forwarding on  — decode takes the EX/WB latch value directly
//     (one `forwards` count, no lost cycle);
//   * forwarding off — decode holds the instruction one cycle
//     (`stalls`), injecting a bubble into execute (`bubbles`).
//
// Decode faults can corrupt the 3-bit opcode field into one of the four
// undefined encodings; the pipeline then squashes the instruction
// (`flushes`) — it never retires, which end-to-end scoring counts as an
// incorrect result. Corruptions that land on a *defined* opcode or on
// the register fields retire a wrong value silently, exactly the
// silent-corruption channel the ALU sweeps measure.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cell/packet.hpp"
#include "cell/pipeline/instruction_store.hpp"
#include "cell/pipeline/pipeline_config.hpp"
#include "cell/pipeline/register_file.hpp"
#include "cell/pipeline/stages.hpp"
#include "cell/trace.hpp"
#include "obs/counters.hpp"

namespace nbx {

/// One retired instruction: program position, id, committed value.
struct RetiredOp {
  std::size_t index = 0;
  std::uint16_t instr_id = 0;
  std::uint8_t value = 0;
};

/// Outcome of a full program run.
struct PipelineRunResult {
  std::size_t program_length = 0;
  std::size_t retired = 0;
  std::size_t correct = 0;  ///< retired values matching the reference
  std::size_t flushes = 0;
  double percent_correct = 100.0;  ///< correct / program_length
  bool completed = true;  ///< false: max_cycles hit with work in flight
};

/// The pipelined cell core. Standalone-usable (benches, property tests)
/// and embedded in ProcessorCell via load_program().
class CellPipeline {
 public:
  CellPipeline(const PipelineConfig& config, CellId id);
  ~CellPipeline();

  /// Loads `program` into fresh store fabric and manufactures the
  /// per-stage defect maps. Returns false when the configured execute
  /// ALU name is not in the catalogue. Resets all run state.
  bool load(const std::vector<Instruction>& program);

  /// Re-arms pc/latches/registers/counters and re-seeds the per-stage
  /// RNG streams; keeps the program, fabric and manufactured defects.
  /// Two runs after load()/reset() are bit-identical.
  void reset();

  /// Advances one clock. Returns false once the pipeline has drained
  /// (no instruction left to fetch, no latch occupied).
  bool cycle();

  /// Runs until drained or `max_cycles` (0 = 4·program+16 safety bound),
  /// scores retired values against the architectural reference, and
  /// publishes MetricsRegistry instruments when a registry is attached.
  PipelineRunResult run(std::size_t max_cycles = 0);

  [[nodiscard]] const obs::PipelineCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<RetiredOp>& retired() const {
    return retired_;
  }
  [[nodiscard]] const InstructionStore& store() const { return store_; }
  [[nodiscard]] const RegisterFile& registers() const { return regs_; }
  [[nodiscard]] const IAlu* execute_alu() const { return execute_.alu(); }
  [[nodiscard]] bool in_flight() const;

  /// §2.3 salvage: in-flight instructions as memory words — fetched/
  /// decoded ones still pending, the executed-not-retired one with its
  /// result copies set. Appended by ProcessorCell::salvage_words().
  [[nodiscard]] std::vector<MemoryWord> salvage_words() const;

  /// Attaches an event trace sink (may be null to detach). Not owned.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Test hook: flips one stored instruction bit (see
  /// InstructionStore::corrupt_bit).
  void corrupt_store_bit(std::size_t bit) { store_.corrupt_bit(bit); }

  /// Architectural reference: the retired value of every instruction of
  /// `program` under fault-free in-order execution with `registers`
  /// architectural registers (micro-op fields per DecodedOp).
  static std::vector<std::uint8_t> reference_results(
      const std::vector<Instruction>& program, std::size_t registers = 8);

 private:
  struct IfIdLatch {
    bool valid = false;
    std::size_t index = 0;
    FetchedRecord rec;
    /// Set once decode has run for this instruction: a stalled
    /// instruction is decoded exactly once (the control word is latched;
    /// re-decoding would draw extra decode-fault masks).
    bool decoded = false;
    DecodedOp op;
  };
  struct IdExLatch {
    bool valid = false;
    std::size_t index = 0;
    DecodedOp op;
    std::uint8_t operand1 = 0;
    std::uint8_t operand2 = 0;
  };
  struct ExWbLatch {
    bool valid = false;
    std::size_t index = 0;
    std::uint16_t instr_id = 0;
    std::uint8_t dst = 0;
    std::uint8_t value = 0;
    DecodedOp op;  // kept for salvage
  };

  PipelineConfig config_;
  CellId id_;
  bool alu_ok_ = true;  // execute_alu name resolved in the catalogue

  FetchStage fetch_;
  DecodeStage decode_;
  ExecuteStage execute_;
  WritebackStage writeback_;

  InstructionStore store_;
  RegisterFile regs_;
  std::vector<Instruction> program_;

  Rng fetch_rng_;
  Rng decode_rng_;
  Rng execute_rng_;
  Rng writeback_rng_;

  std::size_t pc_ = 0;
  IfIdLatch if_id_;
  IdExLatch id_ex_;
  ExWbLatch ex_wb_;
  bool bubble_pending_ = false;  // a stall/flush hole reaches EX next cycle

  obs::PipelineCounters counters_;
  std::vector<RetiredOp> retired_;
  TraceSink* trace_ = nullptr;

  [[nodiscard]] Rng stage_rng(PipeStage s) const;
  void trace_event(TraceEvent e, std::uint16_t id) {
    if (trace_ != nullptr) {
      trace_->record(e, id_, id);
    }
  }
  void publish_metrics() const;
};

}  // namespace nbx
