// stages.hpp — the four pipeline stages of the NanoBox cell.
//
// Each stage class serves two masters:
//
//   * the LEGACY single-instruction path: ProcessorCell::step_compute()
//     is re-expressed as a degenerate 1-deep pipeline — fetch scans the
//     cell memory, decode runs the aluctrl gate, execute runs the three
//     module-redundancy passes, writeback retires the word. These entry
//     points reproduce the pre-refactor monolithic pass draw-for-draw,
//     so every historical golden stands bit-for-bit.
//
//   * the PROGRAM path: CellPipeline runs NBXS programs through the
//     same four stages with per-stage fault injection — fetch reads the
//     faultable InstructionStore, decode unpacks a (possibly TMR-
//     protected) control word, execute drives a catalogued IAlu,
//     writeback commits to the triplicated RegisterFile.
//
// Hazard and flush policy lives in CellPipeline; the stages are pure
// per-instruction transforms plus their fault machinery.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "alu/alu_iface.hpp"
#include "alu/lut_core_alu.hpp"
#include "cell/cell_memory.hpp"
#include "cell/control_logic.hpp"
#include "cell/pipeline/instruction_store.hpp"
#include "cell/pipeline/register_file.hpp"
#include "common/rng.hpp"
#include "fault/defect_map.hpp"
#include "fault/mask_generator.hpp"

namespace nbx {

/// IF — instruction fetch.
class FetchStage {
 public:
  /// Legacy §3.2.2 memory scan: returns the word under the scan pointer
  /// and advances it (wrapping).
  [[nodiscard]] MemoryWord& scan(CellMemory& mem,
                                 std::size_t& scan_ptr) const {
    MemoryWord& w = mem.word(scan_ptr);
    scan_ptr = (scan_ptr + 1) % mem.capacity();
    return w;
  }

  /// Program mode: bind the transient generator to the store's
  /// per-fetch site count.
  void configure(std::size_t sites, double fault_percent) {
    gen_ = MaskGenerator(sites, fault_percent);
  }

  [[nodiscard]] FetchedRecord run(InstructionStore& store, std::size_t pc,
                                  Rng& rng,
                                  std::uint64_t* bit_faults) const {
    return store.fetch(pc, gen_, rng, bit_faults);
  }

 private:
  MaskGenerator gen_{0, 0.0};
};

/// A decoded micro-op. Register/mode fields are derived from the
/// instruction id (the NBXS format's only free bits), which makes every
/// NBXS stream a runnable register program:
///   dst = id[2:0], mode = id[4:3], src1 = id[7:5], src2 = id[10:8]
/// Operand modes: 0 = imm,imm · 1 = reg[src1],imm · 2 = imm,reg[src2]
/// · 3 = reg[src1],reg[src2]. Semantics: r[dst] = op(operand1, operand2)
/// in stream order.
struct DecodedOp {
  bool flush = false;  ///< opcode decoded to an undefined encoding
  std::uint16_t instr_id = 0;
  std::uint8_t op_bits = 0;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::uint8_t mode = 0;
  std::uint8_t imm_a = 0;
  std::uint8_t imm_b = 0;
};

/// Bits in one copy of the decoded control word:
/// op(3) + dst(3) + mode(2) + src1(3) + src2(3).
inline constexpr std::size_t kControlWordBits = 14;

/// ID — decode / aluctrl. Owns the cell's LUT-based control logic
/// (legacy decisions) and the program-mode control-word fault model.
class DecodeStage {
 public:
  DecodeStage(LutCoding control_coding, double control_fault_percent,
              std::uint64_t seed)
      : control_(control_coding, control_fault_percent, seed) {}

  [[nodiscard]] ControlLogic& control() { return control_; }
  [[nodiscard]] const ControlLogic& control() const { return control_; }

  /// Legacy aluctrl gate (§3.3).
  [[nodiscard]] bool should_compute(const MemoryWord& w) {
    return control_.should_compute(w);
  }
  /// Legacy router decision (§3.3).
  [[nodiscard]] RouteDecision route(CellId self, CellId dest) {
    return control_.route(self, dest);
  }

  /// Program mode: control-word protection + per-decode fault rate.
  void configure(LutCoding word_coding, double fault_percent);

  /// Unpacks a fetched record into a micro-op under decode-stage
  /// faults: the control word (one or three copies) is XORed with a
  /// fresh mask, voted when coded, then field-split. An undefined
  /// opcode encoding sets `flush`.
  [[nodiscard]] DecodedOp run(const FetchedRecord& rec, Rng& rng,
                              std::uint64_t* bit_faults);

 private:
  ControlLogic control_;
  std::size_t copies_ = 1;
  MaskGenerator gen_{kControlWordBits, 0.0};
  BitVec mask_{kControlWordBits};
};

/// EX — the ALU datapath with its fault and defect machinery. Exactly
/// one fabric is active: the legacy LutCoreAlu (ProcessorCell) or a
/// catalogued IAlu (CellPipeline).
class ExecuteStage {
 public:
  /// Legacy fabric: the cell's LUT ALU with the chosen bit coding.
  explicit ExecuteStage(LutCoding coding);
  /// Program fabric: any Table-2 catalogue ALU.
  explicit ExecuteStage(std::unique_ptr<IAlu> alu);

  /// Manufactures the fabric's stuck-at defects and (optionally)
  /// remaps logical storage around them — the exact draw sequence of
  /// the historical ProcessorCell constructor.
  void manufacture(double defect_density, std::size_t spare_sites,
                   bool remap, Rng& rng);

  /// (Re)binds the transient generator; call after manufacture.
  void set_fault_percent(double percent);

  /// Legacy path: one LutCoreAlu pass under a fresh mask with defects
  /// overlaid — bit-identical to the historical compute_pass.
  [[nodiscard]] std::uint8_t pass(Opcode op, std::uint8_t a,
                                  std::uint8_t b, Rng& rng,
                                  ModuleStats* stats);

  /// Program path: one IAlu computation under a fresh mask with
  /// defects overlaid. Adds the injected flip count to `*bit_faults`.
  [[nodiscard]] AluOutput run(Opcode op, std::uint8_t a, std::uint8_t b,
                              Rng& rng, ModuleStats* stats,
                              std::uint64_t* bit_faults);

  [[nodiscard]] std::size_t fault_sites() const;
  [[nodiscard]] const DefectMap& defects() const { return defects_; }
  [[nodiscard]] std::size_t manufactured_defects() const {
    return manufactured_;
  }
  [[nodiscard]] bool remap_feasible() const { return remap_feasible_; }
  [[nodiscard]] std::size_t remap_spares_used() const {
    return spares_used_;
  }
  [[nodiscard]] const IAlu* alu() const { return ialu_.get(); }

 private:
  std::unique_ptr<LutCoreAlu> lut_;  // legacy fabric
  std::unique_ptr<IAlu> ialu_;       // program fabric
  DefectMap defects_{0};
  BitVec golden_bits_;
  MaskGenerator gen_{0, 0.0};
  BitVec mask_;
  std::size_t manufactured_ = 0;
  bool remap_feasible_ = true;
  std::size_t spares_used_ = 0;

  [[nodiscard]] std::size_t defectable_sites() const;
};

/// WB — retire.
class WritebackStage {
 public:
  /// Legacy: the word's three result copies are already written;
  /// clearing the pending triple retires it (§3.2.2).
  void retire(MemoryWord& w) const { w.set_pending(false); }

  /// Program mode: per-commit fault rate over the 24 written bits
  /// (three 8-bit register copies).
  void configure(double fault_percent) {
    gen_ = MaskGenerator(kSites, fault_percent);
  }

  /// Commits `value` to r[dst]: each of the three copies is written
  /// through its own 8-bit fault window, so a writeback fault corrupts
  /// one copy and the register vote must outvote it. Returns the
  /// post-write voted value.
  std::uint8_t run(RegisterFile& regs, std::size_t dst,
                   std::uint8_t value, Rng& rng,
                   std::uint64_t* bit_faults);

 private:
  static constexpr std::size_t kSites = 24;
  MaskGenerator gen_{kSites, 0.0};
  BitVec mask_{kSites};
};

}  // namespace nbx
