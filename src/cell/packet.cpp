#include "cell/packet.hpp"

namespace nbx {

namespace {
// Flag byte: low 3 bits opcode, bits 4-5 packet kind.
std::uint8_t flags_byte(const Packet& p) {
  return static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(p.kind) << 4) |
      (static_cast<std::uint8_t>(p.op) & 0b111));
}
}  // namespace

std::array<std::uint8_t, kPacketFlits> encode_packet_flits(const Packet& p) {
  std::array<std::uint8_t, kPacketFlits> flits{};
  flits[0] = kStartMarker;
  flits[1] = p.dest.packed();
  flits[2] = static_cast<std::uint8_t>(p.instr_id >> 8);
  flits[3] = static_cast<std::uint8_t>(p.instr_id & 0xFF);
  flits[4] = flags_byte(p);
  flits[5] = p.operand1;
  flits[6] = p.operand2;
  flits[7] = p.result;
  flits[8] = p.source.packed();
  std::uint8_t csum = 0;
  for (std::size_t i = 1; i <= 8; ++i) {
    csum ^= flits[i];
  }
  flits[9] = csum;
  return flits;
}

std::vector<std::uint8_t> encode_packet(const Packet& p) {
  const auto flits = encode_packet_flits(p);
  return std::vector<std::uint8_t>(flits.begin(), flits.end());
}

std::optional<Packet> PacketAssembler::push(std::uint8_t flit) {
  if (buf_.empty()) {
    if (flit != kStartMarker) {
      return std::nullopt;  // hunt for start of packet
    }
    buf_.push_back(flit);
    return std::nullopt;
  }
  buf_.push_back(flit);
  if (buf_.size() < kPacketFlits) {
    return std::nullopt;
  }
  // Full frame collected; validate and decode.
  std::uint8_t csum = 0;
  for (std::size_t i = 1; i <= 8; ++i) {
    csum ^= buf_[i];
  }
  const bool ok = csum == buf_[9];
  Packet p;
  if (ok) {
    p.dest = CellId::unpack(buf_[1]);
    p.instr_id = static_cast<std::uint16_t>((buf_[2] << 8) | buf_[3]);
    p.kind = static_cast<PacketKind>((buf_[4] >> 4) & 0x3);
    p.op = static_cast<Opcode>(buf_[4] & 0b111);
    p.operand1 = buf_[5];
    p.operand2 = buf_[6];
    p.result = buf_[7];
    p.source = CellId::unpack(buf_[8]);
  } else {
    ++checksum_failures_;
  }
  buf_.clear();
  if (ok) {
    return p;
  }
  return std::nullopt;
}

}  // namespace nbx
