// packet.hpp — NanoBox grid data packets and their 8-bit flit encoding.
//
// Paper §3.2.1: "data packets are created by the off-grid control
// processor ... These data packets contain a unique instruction ID, an ALU
// instruction, two operands, and the ID of the processor cell where the
// instruction will be computed." Cells receive packets "8 bits at a time"
// over the four nearest-neighbour buses, so a packet travels as a fixed
// sequence of flits.
//
// Wire format (10 flits):
//   0  start marker 0xA5
//   1  destination cell ID (row<<4 | col)   — grids up to 16x16
//   2  instruction ID, high byte
//   3  instruction ID, low byte
//   4  flags (packet kind | opcode)
//   5  operand 1
//   6  operand 2
//   7  result
//   8  source cell ID (row<<4 | col)        — for salvage bookkeeping
//   9  checksum: XOR of flits 1..8
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace nbx {

/// What a packet carries.
enum class PacketKind : std::uint8_t {
  kInstruction = 0,  ///< control processor -> cell (shift-in)
  kResult = 1,       ///< cell -> control processor (shift-out)
  kSalvage = 2,      ///< failed cell -> neighbour (system-level recovery)
};

/// A cell coordinate in the paper's addressing scheme: row addresses
/// decrease moving away (down) from the control processor; column
/// addresses decrease moving right.
struct CellId {
  std::uint8_t row = 0;
  std::uint8_t col = 0;

  friend bool operator==(CellId a, CellId b) {
    return a.row == b.row && a.col == b.col;
  }

  [[nodiscard]] std::uint8_t packed() const {
    return static_cast<std::uint8_t>((row << 4) | (col & 0x0F));
  }
  static CellId unpack(std::uint8_t byte) {
    return {static_cast<std::uint8_t>(byte >> 4),
            static_cast<std::uint8_t>(byte & 0x0F)};
  }
};

/// A decoded NanoBox packet.
struct Packet {
  PacketKind kind = PacketKind::kInstruction;
  CellId dest;
  CellId source;
  std::uint16_t instr_id = 0;
  Opcode op = Opcode::kAnd;
  std::uint8_t operand1 = 0;
  std::uint8_t operand2 = 0;
  std::uint8_t result = 0;

  friend bool operator==(const Packet& a, const Packet& b) {
    return a.kind == b.kind && a.dest == b.dest && a.source == b.source &&
           a.instr_id == b.instr_id && a.op == b.op &&
           a.operand1 == b.operand1 && a.operand2 == b.operand2 &&
           a.result == b.result;
  }
};

/// Flits per packet on the wire.
inline constexpr std::size_t kPacketFlits = 10;
/// Start-of-packet marker value.
inline constexpr std::uint8_t kStartMarker = 0xA5;

/// Serializes a packet to its 10 flits without allocating — the form
/// the cell's steady-state forwarding path uses (see flit_ring.hpp).
std::array<std::uint8_t, kPacketFlits> encode_packet_flits(const Packet& p);

/// Serializes a packet to its 10 flits.
std::vector<std::uint8_t> encode_packet(const Packet& p);

/// Incremental packet decoder: feed flits as they arrive on a bus; a
/// complete, checksum-valid packet is returned once assembled.
class PacketAssembler {
 public:
  /// Consumes one flit. Returns a packet when this flit completes one.
  /// Flits before a start marker, and packets with bad checksums, are
  /// discarded (checksum_failures() counts the latter).
  std::optional<Packet> push(std::uint8_t flit);

  [[nodiscard]] std::uint64_t checksum_failures() const {
    return checksum_failures_;
  }
  [[nodiscard]] bool mid_packet() const { return !buf_.empty(); }
  void reset() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t checksum_failures_ = 0;
};

}  // namespace nbx
