#include "cell/control_logic.hpp"

#include "coding/majority.hpp"
#include "lut/truth_table.hpp"

namespace nbx {

RouteDecision golden_route(CellId self, CellId dest) {
  // Paper §3.3: (1) Send Left if column address > cell ID; (2) Send Right
  // if column address < cell ID; (3) Send Up if row address > cell ID;
  // (4) Send Down if row address < cell ID; (5) Keep Here if equal.
  if (dest.col > self.col) {
    return RouteDecision::kSendLeft;
  }
  if (dest.col < self.col) {
    return RouteDecision::kSendRight;
  }
  if (dest.row > self.row) {
    return RouteDecision::kSendUp;
  }
  if (dest.row < self.row) {
    return RouteDecision::kSendDown;
  }
  return RouteDecision::kKeepHere;
}

namespace {

// Comparator state-update tables. Inputs (s_gt, s_lt, a, b); the scan
// runs MSB -> LSB, so once either flag is set it latches.
BitVec tt_gt_update() {
  return build_truth_table(4, [](std::uint32_t in) {
    const bool s_gt = in & 1u;
    const bool s_lt = in & 2u;
    const bool a = in & 4u;
    const bool b = in & 8u;
    return s_gt || (!s_gt && !s_lt && a && !b);
  });
}

BitVec tt_lt_update() {
  return build_truth_table(4, [](std::uint32_t in) {
    const bool s_gt = in & 1u;
    const bool s_lt = in & 2u;
    const bool a = in & 4u;
    const bool b = in & 8u;
    return s_lt || (!s_gt && !s_lt && !a && b);
  });
}

}  // namespace

ControlLogic::ControlLogic(LutCoding coding, double fault_percent,
                           std::uint64_t seed)
    : gen_(0, 0.0), rng_(seed) {
  luts_.emplace_back(tt_majority3(4), coding);  // data-valid vote
  luts_.emplace_back(tt_majority3(4), coding);  // to-be-computed vote
  luts_.emplace_back(tt_gt_update(), coding);   // comparator greater
  luts_.emplace_back(tt_lt_update(), coding);   // comparator less
  std::size_t off = 0;
  for (const CodedLut& l : luts_) {
    offsets_.push_back(off);
    off += l.fault_sites();
  }
  sites_ = off;
  gen_ = MaskGenerator(sites_, fault_percent);
  mask_ = BitVec(sites_);
}

void ControlLogic::fresh_mask() { gen_.generate(rng_, mask_); }

bool ControlLogic::read_lut(std::size_t idx, std::uint32_t addr) {
  const MaskView m(mask_, offsets_[idx], luts_[idx].fault_sites());
  return luts_[idx].read(addr, m);
}

bool ControlLogic::vote_field(const std::array<bool, 3>& field) {
  fresh_mask();
  const std::uint32_t addr = (field[0] ? 1u : 0u) | (field[1] ? 2u : 0u) |
                             (field[2] ? 4u : 0u);
  return read_lut(0, addr);
}

bool ControlLogic::should_compute(const MemoryWord& w) {
  ++decisions_;
  fresh_mask();
  const std::uint32_t vaddr = (w.data_valid[0] ? 1u : 0u) |
                              (w.data_valid[1] ? 2u : 0u) |
                              (w.data_valid[2] ? 4u : 0u);
  const bool valid = read_lut(0, vaddr);
  const std::uint32_t paddr = (w.to_be_computed[0] ? 1u : 0u) |
                              (w.to_be_computed[1] ? 2u : 0u) |
                              (w.to_be_computed[2] ? 4u : 0u);
  const bool pending = read_lut(1, paddr);
  const bool decision = valid && pending;
  if (decision != (w.valid() && w.pending())) {
    ++corrupted_;
  }
  return decision;
}

std::pair<bool, bool> ControlLogic::compare4(std::uint8_t a,
                                             std::uint8_t b) {
  bool s_gt = false;
  bool s_lt = false;
  for (int bit = 3; bit >= 0; --bit) {
    const bool ab = (a >> bit) & 1u;
    const bool bb = (b >> bit) & 1u;
    const std::uint32_t addr = (s_gt ? 1u : 0u) | (s_lt ? 2u : 0u) |
                               (ab ? 4u : 0u) | (bb ? 8u : 0u);
    const bool new_gt = read_lut(2, addr);
    const bool new_lt = read_lut(3, addr);
    s_gt = new_gt;
    s_lt = new_lt;
  }
  return {s_gt, s_lt};
}

RouteDecision ControlLogic::route(CellId self, CellId dest) {
  ++decisions_;
  fresh_mask();
  const auto [col_gt, col_lt] = compare4(dest.col, self.col);
  const auto [row_gt, row_lt] = compare4(dest.row, self.row);
  RouteDecision d = RouteDecision::kKeepHere;
  if (col_gt) {
    d = RouteDecision::kSendLeft;
  } else if (col_lt) {
    d = RouteDecision::kSendRight;
  } else if (row_gt) {
    d = RouteDecision::kSendUp;
  } else if (row_lt) {
    d = RouteDecision::kSendDown;
  }
  if (d != golden_route(self, dest)) {
    ++corrupted_;
  }
  return d;
}

}  // namespace nbx
