// cell_memory.hpp — the processor cell's small read/writable memory.
//
// Paper §3.3: "the memory unit of a processor cell contains 32 words" and
// §2.2: the memory "may have single-event upsets causing transient bit
// flips", which the triplicated critical fields mask. The memory is
// active in all three modes.
//
// Upset injection works on the packed bit representation of the whole
// array (32 x 65 bits), so a flip can land in any field — including the
// unprotected operand bits, exactly as in real storage.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cell/memory_word.hpp"
#include "common/rng.hpp"

namespace nbx {

/// Fixed-capacity cell memory with SEU injection.
class CellMemory {
 public:
  /// The paper's memory size; other capacities are allowed for
  /// scaling experiments.
  static constexpr std::size_t kDefaultWords = 32;

  explicit CellMemory(std::size_t words = kDefaultWords);

  [[nodiscard]] std::size_t capacity() const { return words_.size(); }

  [[nodiscard]] const MemoryWord& word(std::size_t i) const {
    return words_[i];
  }
  [[nodiscard]] MemoryWord& word(std::size_t i) { return words_[i]; }

  /// First slot whose (voted) data-valid is clear, if any.
  [[nodiscard]] std::optional<std::size_t> find_free_slot() const;

  /// Stores an instruction word in the first free slot. Returns false if
  /// the memory is full.
  bool store(const MemoryWord& w);

  /// Number of words with (voted) valid data.
  [[nodiscard]] std::size_t occupied() const;
  /// Number of words with voted valid && voted to-be-computed.
  [[nodiscard]] std::size_t pending() const;

  /// Clears all words to the empty state.
  void clear();

  /// Injects `flips` single-event upsets at uniformly random bit
  /// positions across the packed array (persistent until overwritten —
  /// memory upsets, unlike logic faults, stick).
  void inject_upsets(Rng& rng, std::size_t flips);

  /// Scrubs the triplicated critical fields: every data-valid and
  /// to-be-computed triple is rewritten to its majority value, repairing
  /// single upsets before a second hit on the same triple can outvote
  /// the truth. (Result copies are deliberately NOT scrubbed: the three
  /// raw module results stay independent until the shift-out vote,
  /// §3.2.3.) Returns the number of field copies repaired.
  std::size_t scrub();

  /// Total bit positions an upset can hit.
  [[nodiscard]] std::size_t bit_capacity() const {
    return words_.size() * MemoryWord::kBits;
  }

 private:
  std::vector<MemoryWord> words_;
};

}  // namespace nbx
