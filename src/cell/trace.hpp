// trace.hpp — cycle-stamped event tracing for the grid simulator.
//
// Debugging a distributed failure ("why is pixel 37 missing?") needs the
// sequence of events, not just end-of-run counters. A TraceSink attached
// to a grid records every packet movement, computation, emission, salvage
// and failover decision with its cycle number, queryable by cell or
// instruction id.
//
// Two growth controls for long runs: a configurable ring-buffer capacity
// (oldest records are evicted and counted in dropped()) and an optional
// live JSONL stream that writes every record to an ostream as it happens
// — the stream sees everything even when the ring forgets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>
#include <vector>

#include "cell/packet.hpp"

namespace nbx {

/// Kinds of traced events.
enum class TraceEvent : std::uint8_t {
  kModeChange,      ///< grid-wide mode line switched (id = new mode)
  kPacketStored,    ///< an instruction/salvage packet entered a memory
  kPacketForwarded, ///< a packet passed through a router
  kComputed,        ///< a memory word's triple computation finished
  kResultEmitted,   ///< a result packet left its cell
  kCellDisabled,    ///< the watchdog disabled a cell (id unused)
  kWordSalvaged,    ///< a memory word moved to a neighbour
  kStageFetch,      ///< pipeline fetched an instruction record
  kStageDecode,     ///< pipeline decoded a control word
  kStageExecute,    ///< pipeline execute stage produced a value
  kStageWriteback,  ///< pipeline retired an instruction
  kPipelineStall,   ///< decode stalled on a RAW hazard (forwarding off)
  kPipelineFlush,   ///< decode squashed a corrupted instruction
};

/// Every TraceEvent kind, for iteration (summaries, round-trip tests).
/// Keep in sync with the enum; trace_event_name's no-default switch
/// turns a forgotten case into a compile error.
inline constexpr std::array<TraceEvent, 13> kAllTraceEvents = {
    TraceEvent::kModeChange,      TraceEvent::kPacketStored,
    TraceEvent::kPacketForwarded, TraceEvent::kComputed,
    TraceEvent::kResultEmitted,   TraceEvent::kCellDisabled,
    TraceEvent::kWordSalvaged,    TraceEvent::kStageFetch,
    TraceEvent::kStageDecode,     TraceEvent::kStageExecute,
    TraceEvent::kStageWriteback,  TraceEvent::kPipelineStall,
    TraceEvent::kPipelineFlush};

/// Human-readable event name.
std::string_view trace_event_name(TraceEvent e);

/// Inverse of trace_event_name; nullopt for an unknown name.
std::optional<TraceEvent> trace_event_from_name(std::string_view name);

/// One trace record.
struct TraceRecord {
  std::uint64_t cycle = 0;
  TraceEvent event = TraceEvent::kModeChange;
  CellId cell;            ///< the cell where the event happened
  std::uint16_t id = 0;   ///< instruction id / mode, depending on event
};

/// Writes one record as a single JSONL line (with trailing newline):
/// {"cycle":42,"event":"computed","row":1,"col":0,"id":17}
void write_trace_record_jsonl(std::ostream& os, const TraceRecord& r);

/// Collects trace records. Attach with NanoBoxGrid::attach_trace; the
/// grid advances the sink's clock each cycle.
class TraceSink {
 public:
  void set_cycle(std::uint64_t c) { cycle_ = c; }
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Caps the in-memory buffer at `cap` records, keeping the most
  /// recent ones (0 = unbounded, the default). Shrinking below the
  /// current size evicts oldest records into dropped().
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Records evicted from the ring so far (never reported by records()
  /// et al.; a live stream still saw them).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Streams every subsequent record to `os` as one JSONL line at
  /// record() time, in addition to buffering. Null detaches. The
  /// stream is not owned and must outlive the sink (or be detached).
  void stream_to(std::ostream* os) { stream_ = os; }

  void record(TraceEvent e, CellId cell, std::uint16_t id = 0);

  /// Buffered records in chronological order. (A copy: the ring's
  /// internal layout wraps, so a reference cannot be chronological.)
  [[nodiscard]] std::vector<TraceRecord> records() const;

  /// Number of currently buffered records.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  [[nodiscard]] std::size_t count(TraceEvent e) const;

  /// All records touching instruction `id`, in order — the life of one
  /// pixel through the machine.
  [[nodiscard]] std::vector<TraceRecord> history_of(std::uint16_t id) const;

  /// All records at one cell, in order.
  [[nodiscard]] std::vector<TraceRecord> at_cell(CellId cell) const;

  /// Per-event-kind counts plus first/last cycle.
  void summarize(std::ostream& os) const;

  /// Full listing ("cycle 42  computed       cell(1,0) id=17").
  void dump(std::ostream& os, std::size_t limit = 0) const;

  /// Dumps the buffered records as JSONL, one record per line.
  void write_jsonl(std::ostream& os) const;

  /// Drops all buffered records and resets dropped(); keeps the
  /// capacity and any attached stream.
  void clear() {
    buf_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  template <class Fn>
  void for_each(Fn&& fn) const {
    // Chronological walk: oldest record sits at head_ once the ring has
    // wrapped (buf_ full), at index 0 before that.
    const std::size_t n = buf_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(buf_[(head_ + i) % n]);
    }
  }

  std::uint64_t cycle_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::size_t head_ = 0;      // index of the oldest record when wrapped
  std::vector<TraceRecord> buf_;
  std::ostream* stream_ = nullptr;
};

}  // namespace nbx
