// trace.hpp — cycle-stamped event tracing for the grid simulator.
//
// Debugging a distributed failure ("why is pixel 37 missing?") needs the
// sequence of events, not just end-of-run counters. A TraceSink attached
// to a grid records every packet movement, computation, emission, salvage
// and failover decision with its cycle number, queryable by cell or
// instruction id.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "cell/packet.hpp"

namespace nbx {

/// Kinds of traced events.
enum class TraceEvent : std::uint8_t {
  kModeChange,      ///< grid-wide mode line switched (id = new mode)
  kPacketStored,    ///< an instruction/salvage packet entered a memory
  kPacketForwarded, ///< a packet passed through a router
  kComputed,        ///< a memory word's triple computation finished
  kResultEmitted,   ///< a result packet left its cell
  kCellDisabled,    ///< the watchdog disabled a cell (id unused)
  kWordSalvaged,    ///< a memory word moved to a neighbour
};

/// Human-readable event name.
std::string_view trace_event_name(TraceEvent e);

/// One trace record.
struct TraceRecord {
  std::uint64_t cycle = 0;
  TraceEvent event = TraceEvent::kModeChange;
  CellId cell;            ///< the cell where the event happened
  std::uint16_t id = 0;   ///< instruction id / mode, depending on event
};

/// Collects trace records. Attach with NanoBoxGrid::attach_trace; the
/// grid advances the sink's clock each cycle.
class TraceSink {
 public:
  void set_cycle(std::uint64_t c) { cycle_ = c; }
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  void record(TraceEvent e, CellId cell, std::uint16_t id = 0) {
    records_.push_back(TraceRecord{cycle_, e, cell, id});
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count(TraceEvent e) const;

  /// All records touching instruction `id`, in order — the life of one
  /// pixel through the machine.
  [[nodiscard]] std::vector<TraceRecord> history_of(std::uint16_t id) const;

  /// All records at one cell, in order.
  [[nodiscard]] std::vector<TraceRecord> at_cell(CellId cell) const;

  /// Per-event-kind counts plus first/last cycle.
  void summarize(std::ostream& os) const;

  /// Full listing ("cycle 42  computed       cell(1,0) id=17").
  void dump(std::ostream& os, std::size_t limit = 0) const;

  void clear() { records_.clear(); }

 private:
  std::uint64_t cycle_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace nbx
