#include "cell/cell_memory.hpp"

namespace nbx {

CellMemory::CellMemory(std::size_t words) : words_(words) {}

std::optional<std::size_t> CellMemory::find_free_slot() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (!words_[i].valid()) {
      return i;
    }
  }
  return std::nullopt;
}

bool CellMemory::store(const MemoryWord& w) {
  const auto slot = find_free_slot();
  if (!slot) {
    return false;
  }
  words_[*slot] = w;
  return true;
}

std::size_t CellMemory::occupied() const {
  std::size_t n = 0;
  for (const MemoryWord& w : words_) {
    if (w.valid()) {
      ++n;
    }
  }
  return n;
}

std::size_t CellMemory::pending() const {
  std::size_t n = 0;
  for (const MemoryWord& w : words_) {
    if (w.valid() && w.pending()) {
      ++n;
    }
  }
  return n;
}

void CellMemory::clear() {
  for (MemoryWord& w : words_) {
    w = MemoryWord{};
  }
}

std::size_t CellMemory::scrub() {
  std::size_t repaired = 0;
  for (MemoryWord& w : words_) {
    const bool valid = w.valid();
    const bool pending = w.pending();
    for (std::size_t i = 0; i < 3; ++i) {
      if (w.data_valid[i] != valid) {
        w.data_valid[i] = valid;
        ++repaired;
      }
      if (w.to_be_computed[i] != pending) {
        w.to_be_computed[i] = pending;
        ++repaired;
      }
    }
  }
  return repaired;
}

void CellMemory::inject_upsets(Rng& rng, std::size_t flips) {
  if (flips == 0 || words_.empty()) {
    return;
  }
  // Pack, flip, unpack — an upset can strike any field of any word.
  BitVec bits(bit_capacity());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i].pack(bits, i * MemoryWord::kBits);
  }
  for (std::size_t f = 0; f < flips; ++f) {
    bits.flip(static_cast<std::size_t>(rng.below(bits.size())));
  }
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = MemoryWord::unpack(bits, i * MemoryWord::kBits);
  }
}

}  // namespace nbx
