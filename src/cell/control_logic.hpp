// control_logic.hpp — LUT-based ALU-control decision logic (future work 1).
//
// Paper §7: "Our foremost future work is to convert the entire processor
// cell, including the router and alu-control modules, into lookup tables.
// In this way, we can expand our fault injection experiments and analyze
// the effect of high fault rates on control logic."
//
// We implement that extension: the nbox-aluctrl decisions of §3.3 — the
// majority votes over the triplicated data-valid and to-be-computed
// fields — and the router's destination comparison run through coded
// LUTs whose bit strings receive injected faults, so control faults can
// skip instructions, recompute finished ones, or misroute packets.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "cell/memory_word.hpp"
#include "cell/packet.hpp"
#include "common/rng.hpp"
#include "fault/mask_generator.hpp"
#include "lut/coded_lut.hpp"

namespace nbx {

/// Routing decisions of the nbox-router (paper §3.3, five cases).
enum class RouteDecision : std::uint8_t {
  kKeepHere,
  kSendLeft,
  kSendRight,
  kSendUp,
  kSendDown,
};

/// Pure (fault-free) routing rule: columns decrease moving right, rows
/// decrease moving down/away from the control processor; column is
/// resolved before row (the paper's case order).
RouteDecision golden_route(CellId self, CellId dest);

/// The cell's LUT-implemented control decisions, with optional fault
/// injection on the control LUT bit strings.
class ControlLogic {
 public:
  /// `coding` — bit-level protection of the control LUTs;
  /// `fault_percent` — fraction of control-LUT bits flipped per decision
  /// (0 = fault-free, the paper's baseline behaviour).
  explicit ControlLogic(LutCoding coding, double fault_percent = 0.0,
                        std::uint64_t seed = 1);

  /// Majority-votes a triplicated field through the valid-vote LUT.
  [[nodiscard]] bool vote_field(const std::array<bool, 3>& field);

  /// Full aluctrl gate: should this word be computed now?
  /// (valid majority AND pending majority, each through its LUT.)
  [[nodiscard]] bool should_compute(const MemoryWord& w);

  /// Routing decision through comparison LUTs. Compares dest/self row
  /// and column bit-serially through faultable comparator LUTs, then
  /// applies the five-way rule.
  [[nodiscard]] RouteDecision route(CellId self, CellId dest);

  /// Decisions made so far (for telemetry).
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  /// Decisions that differed from the golden rule (only counted when
  /// faults are enabled).
  [[nodiscard]] std::uint64_t corrupted_decisions() const {
    return corrupted_;
  }

  /// Total control-LUT fault sites.
  [[nodiscard]] std::size_t fault_sites() const { return sites_; }

 private:
  std::vector<CodedLut> luts_;  // [0] valid vote, [1] pending vote,
                                // [2] cmp greater, [3] cmp less
  std::vector<std::size_t> offsets_;
  std::size_t sites_ = 0;
  MaskGenerator gen_;
  Rng rng_;
  BitVec mask_;
  std::uint64_t decisions_ = 0;
  std::uint64_t corrupted_ = 0;

  [[nodiscard]] bool read_lut(std::size_t idx, std::uint32_t addr);
  void fresh_mask();

  /// 4-bit magnitude comparison, MSB first, through the two comparator
  /// LUTs (greater-flag and less-flag state updates). Returns
  /// {a > b, a < b} as decided by the (possibly faulted) LUTs.
  [[nodiscard]] std::pair<bool, bool> compare4(std::uint8_t a,
                                               std::uint8_t b);
};

}  // namespace nbx
