#include "cell/memory_word.hpp"

#include "coding/majority.hpp"

namespace nbx {

bool MemoryWord::valid() const {
  return majority3(data_valid[0], data_valid[1], data_valid[2]);
}

bool MemoryWord::pending() const {
  return majority3(to_be_computed[0], to_be_computed[1], to_be_computed[2]);
}

std::uint8_t MemoryWord::voted_result() const {
  return majority3(result[0], result[1], result[2]);
}

bool MemoryWord::has_internal_disagreement() const {
  return tmr_disagreement(data_valid[0], data_valid[1], data_valid[2]) ||
         tmr_disagreement(to_be_computed[0], to_be_computed[1],
                          to_be_computed[2]) ||
         tmr_disagreement(result[0], result[1], result[2]);
}

void MemoryWord::set_valid(bool v) { data_valid = {v, v, v}; }

void MemoryWord::set_pending(bool v) { to_be_computed = {v, v, v}; }

void MemoryWord::set_result(std::uint8_t r) { result = {r, r, r}; }

void MemoryWord::pack(BitVec& bits, std::size_t offset) const {
  bits.deposit(offset + 0, 16, instr_id);
  bits.deposit(offset + 16, 3, static_cast<std::uint8_t>(op));
  bits.deposit(offset + 19, 8, operand1);
  bits.deposit(offset + 27, 8, operand2);
  for (std::size_t i = 0; i < 3; ++i) {
    bits.deposit(offset + 35 + 8 * i, 8, result[i]);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    bits.set(offset + 59 + i, data_valid[i]);
    bits.set(offset + 62 + i, to_be_computed[i]);
  }
}

MemoryWord MemoryWord::unpack(const BitVec& bits, std::size_t offset) {
  MemoryWord w;
  w.instr_id = static_cast<std::uint16_t>(bits.extract(offset + 0, 16));
  w.op = static_cast<Opcode>(bits.extract(offset + 16, 3));
  w.operand1 = static_cast<std::uint8_t>(bits.extract(offset + 19, 8));
  w.operand2 = static_cast<std::uint8_t>(bits.extract(offset + 27, 8));
  for (std::size_t i = 0; i < 3; ++i) {
    w.result[i] = static_cast<std::uint8_t>(bits.extract(offset + 35 + 8 * i, 8));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    w.data_valid[i] = bits.get(offset + 59 + i);
    w.to_be_computed[i] = bits.get(offset + 62 + i);
  }
  return w;
}

}  // namespace nbx
