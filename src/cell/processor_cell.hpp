// processor_cell.hpp — one NanoBox processor cell (paper §3.3).
//
// "Each processor cell contains a simple ALU, a small amount of
// read/writable memory, and a communication router." The cell is a
// cycle-level model: every cycle it consumes at most one flit per
// neighbour bus, advances its mode FSM (shift-in / compute / shift-out,
// §3.2), and emits at most one flit per bus.
//
// Since the pipeline refactor the cell is a thin owner of the four
// pipeline stages (cell/pipeline/stages.hpp): the historical
// single-instruction compute pass is the degenerate 1-deep pipeline —
// fetch scans the memory, decode runs the aluctrl gate, execute runs
// the three module-redundancy passes, writeback retires the word — and
// is bit-identical to the pre-refactor monolithic pass. load_program()
// arms the full 4-deep program pipeline (cell/pipeline/
// cell_pipeline.hpp) on top of the same cell.
//
// Fault knobs (all default off, i.e. ideal behaviour):
//   * ALU datapath faults    — fraction of LUT bits flipped per pass;
//   * control-logic faults   — future-work extension, see control_logic.hpp;
//   * memory upsets          — expected persistent bit flips per cycle;
//   * per-stage pipeline faults — CellConfig::pipeline, program mode only;
//   * error threshold        — §2.3: a cell whose accumulated error count
//     exceeds the threshold stops its heartbeat so the watchdog can
//     disable it and salvage its outstanding work.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cell/cell_memory.hpp"
#include "cell/flit_ring.hpp"
#include "cell/packet.hpp"
#include "cell/pipeline/cell_pipeline.hpp"
#include "cell/pipeline/pipeline_config.hpp"
#include "cell/pipeline/stages.hpp"
#include "cell/trace.hpp"
#include "common/rng.hpp"
#include "fault/defect_map.hpp"

namespace nbx {

/// Grid-wide mode lines driven by the control processor (§3.2): exactly
/// one is high at a time and all cells switch together.
enum class CellMode : std::uint8_t { kShiftIn, kCompute, kShiftOut };

/// The four nearest-neighbour 8-bit buses.
enum class Port : std::uint8_t { kTop = 0, kBottom = 1, kLeft = 2, kRight = 3 };
inline constexpr std::size_t kPortCount = 4;

/// Maps a routing decision onto the output port it uses.
Port port_for(RouteDecision d);

/// Static configuration of a processor cell.
struct CellConfig {
  LutCoding alu_coding = LutCoding::kTmr;
  double alu_fault_percent = 0.0;      ///< per computation pass
  LutCoding control_coding = LutCoding::kTmr;
  double control_fault_percent = 0.0;  ///< per control decision
  double memory_upsets_per_cycle = 0.0;  ///< expected SEUs per cycle
  double alu_defect_density = 0.0;  ///< stuck-at density of the cell's
                                    ///< LUT fabric, fixed at manufacture
  /// Spare storage sites manufactured beyond the ALU's logical fault
  /// sites (same defect density). With `remap_defects` they give the
  /// placement step somewhere to move storage that landed on bad fabric.
  std::size_t alu_spare_sites = 0;
  /// Defect-aware placement (fault/remap.hpp, Lawson & Wolpert): route
  /// the ALU's logical storage around known-defective sites using the
  /// spare pool. A feasible plan leaves the cell effectively defect-free;
  /// an infeasible one (spares exhausted) leaves the residue in place and
  /// is reported via remap_feasible() so wafer salvage can condemn the
  /// cell instead of computing on known-bad storage.
  bool remap_defects = false;
  std::size_t memory_words = CellMemory::kDefaultWords;
  std::uint64_t error_threshold = 1000;  ///< §2.3 self-disable threshold
  /// When true, bit-level TMR disagreements observed inside the cell's
  /// ALU passes count toward the error threshold — the §2.3 mechanism by
  /// which a cell on a bad patch of fabric notices its own sickness and
  /// stops its heartbeat even though every individual fault was masked.
  bool count_masked_faults = false;
  std::uint64_t scrub_interval = 0;  ///< cycles between memory scrubs of
                                     ///< the triplicated fields (0 = off)
  std::uint64_t seed = 7;
  /// Program-pipeline configuration, used only by load_program(); the
  /// defaults leave the legacy single-instruction path untouched.
  PipelineConfig pipeline;
};

/// Cell telemetry.
struct CellStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions_computed = 0;
  std::uint64_t packets_stored = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t results_emitted = 0;
  std::uint64_t salvage_received = 0;
  std::uint64_t memory_disagreements = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t masked_alu_faults = 0;  ///< TMR disagreements inside passes
  std::uint64_t dropped_full_memory = 0;
  std::uint64_t dropped_ring_overflow = 0;  ///< flits lost to a full ring
  std::uint64_t errors = 0;  ///< accumulated toward the error threshold
};

/// One NanoBox processor cell.
class ProcessorCell {
 public:
  ProcessorCell(CellId id, const CellConfig& config);

  [[nodiscard]] CellId id() const { return id_; }

  /// Grid-wide mode line (§3.2). Changing mode resets scan state.
  void set_mode(CellMode m);
  [[nodiscard]] CellMode mode() const { return mode_; }

  /// Delivers one flit arriving on `from` this cycle.
  void receive_flit(Port from, std::uint8_t flit);

  /// Pops the flit (if any) this cell drives onto `to` this cycle.
  std::optional<std::uint8_t> pop_output(Port to);

  /// Advances one clock cycle: processes received flits, runs the mode
  /// FSM, injects configured memory upsets, beats the heart.
  void step();

  /// §2.3 heartbeat: increments each cycle while the cell is healthy.
  [[nodiscard]] std::uint64_t heartbeat() const { return heartbeat_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Hard-kills the cell (failover experiments). If `router_survives`,
  /// the memory remains salvageable per §2.3.
  void force_fail(bool router_survives = true);
  [[nodiscard]] bool salvageable() const { return router_survives_; }

  /// Extracts (and removes) all valid memory words — "the contents of
  /// the cell memory will be sent to the surrounding processor cells so
  /// that they can finish any outstanding computations" (§2.3). Words
  /// already computed keep their results and are shifted out by the
  /// adopting neighbour; pending ones get recomputed there. A loaded
  /// program pipeline contributes its in-flight instructions too.
  std::vector<MemoryWord> salvage_words();

  /// Direct memory access for the control processor / tests.
  [[nodiscard]] const CellMemory& memory() const { return memory_; }
  [[nodiscard]] CellMemory& memory() { return memory_; }

  [[nodiscard]] const CellStats& stats() const { return stats_; }
  [[nodiscard]] const ControlLogic& control() const {
    return decode_.control();
  }

  /// True when nothing is buffered in this cell's queues or assemblers.
  [[nodiscard]] bool quiescent() const;

  /// The *effective* defect map the ALU experiences after any remap —
  /// empty for a feasible defect-aware placement.
  [[nodiscard]] const DefectMap& alu_defects() const {
    return execute_.defects();
  }
  /// Defects manufactured into the cell's physical fabric (logical +
  /// spare sites), before any remap.
  [[nodiscard]] std::size_t manufactured_defects() const {
    return execute_.manufactured_defects();
  }
  /// False when remap_defects was requested but the spare pool could not
  /// absorb every defective logical site (§2.3 salvage candidates).
  [[nodiscard]] bool remap_feasible() const {
    return execute_.remap_feasible();
  }
  [[nodiscard]] std::size_t remap_spares_used() const {
    return execute_.remap_spares_used();
  }

  /// Arms the 4-deep program pipeline with `program` (NBXS stream),
  /// configured by CellConfig::pipeline with a per-cell derived seed.
  /// Returns false when the configured execute ALU is unknown.
  bool load_program(const std::vector<Instruction>& program);
  /// Runs the loaded program to completion (see CellPipeline::run).
  PipelineRunResult run_program(std::size_t max_cycles = 0);
  [[nodiscard]] CellPipeline* pipeline() { return pipeline_.get(); }
  [[nodiscard]] const CellPipeline* pipeline() const {
    return pipeline_.get();
  }

  /// Attaches an event trace sink (may be null to detach). Not owned.
  void set_trace(TraceSink* sink) {
    trace_ = sink;
    if (pipeline_ != nullptr) {
      pipeline_->set_trace(sink);
    }
  }

 private:
  CellId id_;
  CellConfig config_;
  CellMode mode_ = CellMode::kShiftIn;
  bool alive_ = true;
  bool router_survives_ = true;
  std::uint64_t heartbeat_ = 0;

  CellMemory memory_;
  FetchStage fetch_;
  DecodeStage decode_;      // owns the ControlLogic
  ExecuteStage execute_;    // owns the ALU + defect/mask machinery
  WritebackStage writeback_;
  Rng rng_;

  std::unique_ptr<CellPipeline> pipeline_;  // armed by load_program()

  std::array<PacketAssembler, kPortCount> assemblers_;
  std::array<FlitRing, kPortCount> in_flits_;
  std::array<FlitRing, kPortCount> out_flits_;

  std::size_t scan_ptr_ = 0;       // compute-mode memory scan position
  std::size_t shift_out_ptr_ = 0;  // next own word to emit in shift-out
  bool sent_initial_shift_out_ = false;

  CellStats stats_;
  TraceSink* trace_ = nullptr;

  void trace_event(TraceEvent e, std::uint16_t id = 0) {
    if (trace_ != nullptr) {
      trace_->record(e, id_, id);
    }
  }

  void process_incoming();
  void handle_packet(Port from, const Packet& p);
  void store_instruction(const Packet& p);
  void forward_packet(const Packet& p, RouteDecision d);
  void queue_flits(FlitRing& q, const std::array<std::uint8_t, kPacketFlits>& flits);
  void step_compute();
  void step_shift_out();
  void emit_result_packet(MemoryWord& w);
  std::uint8_t compute_pass(Opcode op, std::uint8_t a, std::uint8_t b);
  void note_error(std::uint64_t n = 1);
};

}  // namespace nbx
