#include "cell/trace.hpp"

#include <iomanip>

namespace nbx {

std::string_view trace_event_name(TraceEvent e) {
  // No default: adding a TraceEvent kind without naming it is a compile
  // error (-Werror=switch).
  switch (e) {
    case TraceEvent::kModeChange:
      return "mode-change";
    case TraceEvent::kPacketStored:
      return "stored";
    case TraceEvent::kPacketForwarded:
      return "forwarded";
    case TraceEvent::kComputed:
      return "computed";
    case TraceEvent::kResultEmitted:
      return "result-emitted";
    case TraceEvent::kCellDisabled:
      return "cell-disabled";
    case TraceEvent::kWordSalvaged:
      return "word-salvaged";
    case TraceEvent::kStageFetch:
      return "stage-fetch";
    case TraceEvent::kStageDecode:
      return "stage-decode";
    case TraceEvent::kStageExecute:
      return "stage-execute";
    case TraceEvent::kStageWriteback:
      return "stage-writeback";
    case TraceEvent::kPipelineStall:
      return "pipeline-stall";
    case TraceEvent::kPipelineFlush:
      return "pipeline-flush";
  }
  return "?";
}

std::optional<TraceEvent> trace_event_from_name(std::string_view name) {
  for (const TraceEvent e : kAllTraceEvents) {
    if (trace_event_name(e) == name) {
      return e;
    }
  }
  return std::nullopt;
}

void write_trace_record_jsonl(std::ostream& os, const TraceRecord& r) {
  os << "{\"cycle\":" << r.cycle << ",\"event\":\""
     << trace_event_name(r.event) << "\",\"row\":" << int(r.cell.row)
     << ",\"col\":" << int(r.cell.col) << ",\"id\":" << r.id << "}\n";
}

void TraceSink::set_capacity(std::size_t cap) {
  if (cap != 0 && buf_.size() > cap) {
    // Keep the most recent `cap` records; evictions count as dropped.
    std::vector<TraceRecord> chrono = records();
    dropped_ += chrono.size() - cap;
    buf_.assign(chrono.end() - static_cast<std::ptrdiff_t>(cap),
                chrono.end());
    head_ = 0;
  } else if (head_ != 0) {
    // Re-linearize so future appends under the new capacity stay simple.
    std::vector<TraceRecord> chrono = records();
    buf_ = std::move(chrono);
    head_ = 0;
  }
  capacity_ = cap;
}

void TraceSink::record(TraceEvent e, CellId cell, std::uint16_t id) {
  const TraceRecord r{cycle_, e, cell, id};
  if (stream_ != nullptr) {
    write_trace_record_jsonl(*stream_, r);
  }
  if (capacity_ == 0 || buf_.size() < capacity_) {
    buf_.push_back(r);
  } else {
    // Ring full: overwrite the oldest record.
    buf_[head_] = r;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceRecord> TraceSink::records() const {
  std::vector<TraceRecord> out;
  out.reserve(buf_.size());
  for_each([&out](const TraceRecord& r) { out.push_back(r); });
  return out;
}

std::size_t TraceSink::count(TraceEvent e) const {
  std::size_t n = 0;
  for (const TraceRecord& r : buf_) {
    if (r.event == e) {
      ++n;
    }
  }
  return n;
}

std::vector<TraceRecord> TraceSink::history_of(std::uint16_t id) const {
  std::vector<TraceRecord> out;
  for_each([&](const TraceRecord& r) {
    if (r.event != TraceEvent::kModeChange &&
        r.event != TraceEvent::kCellDisabled && r.id == id) {
      out.push_back(r);
    }
  });
  return out;
}

std::vector<TraceRecord> TraceSink::at_cell(CellId cell) const {
  std::vector<TraceRecord> out;
  for_each([&](const TraceRecord& r) {
    if (r.cell == cell) {
      out.push_back(r);
    }
  });
  return out;
}

void TraceSink::summarize(std::ostream& os) const {
  os << "trace: " << buf_.size() << " events";
  if (dropped_ != 0) {
    os << " (+" << dropped_ << " dropped)";
  }
  if (!buf_.empty()) {
    const std::vector<TraceRecord> chrono = records();
    os << " over cycles [" << chrono.front().cycle << ", "
       << chrono.back().cycle << "]";
  }
  os << "\n";
  for (const TraceEvent e : kAllTraceEvents) {
    const std::size_t n = count(e);
    if (n != 0) {
      os << "  " << std::setw(15) << std::left << trace_event_name(e) << n
         << "\n";
    }
  }
}

void TraceSink::dump(std::ostream& os, std::size_t limit) const {
  std::size_t shown = 0;
  bool truncated = false;
  for_each([&](const TraceRecord& r) {
    if (truncated || (limit != 0 && shown >= limit)) {
      truncated = true;
      return;
    }
    os << "cycle " << std::setw(6) << r.cycle << "  " << std::setw(15)
       << std::left << trace_event_name(r.event) << std::right << " cell("
       << int(r.cell.row) << "," << int(r.cell.col) << ")";
    if (r.event != TraceEvent::kModeChange &&
        r.event != TraceEvent::kCellDisabled) {
      os << " id=" << r.id;
    }
    os << "\n";
    ++shown;
  });
  if (truncated) {
    os << "... (" << buf_.size() - shown << " more)\n";
  }
}

void TraceSink::write_jsonl(std::ostream& os) const {
  for_each([&os](const TraceRecord& r) { write_trace_record_jsonl(os, r); });
}

}  // namespace nbx
