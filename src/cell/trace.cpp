#include "cell/trace.hpp"

#include <array>
#include <iomanip>

namespace nbx {

std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kModeChange:
      return "mode-change";
    case TraceEvent::kPacketStored:
      return "stored";
    case TraceEvent::kPacketForwarded:
      return "forwarded";
    case TraceEvent::kComputed:
      return "computed";
    case TraceEvent::kResultEmitted:
      return "result-emitted";
    case TraceEvent::kCellDisabled:
      return "cell-disabled";
    case TraceEvent::kWordSalvaged:
      return "word-salvaged";
  }
  return "?";
}

std::size_t TraceSink::count(TraceEvent e) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.event == e) {
      ++n;
    }
  }
  return n;
}

std::vector<TraceRecord> TraceSink::history_of(std::uint16_t id) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.event != TraceEvent::kModeChange &&
        r.event != TraceEvent::kCellDisabled && r.id == id) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<TraceRecord> TraceSink::at_cell(CellId cell) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.cell == cell) {
      out.push_back(r);
    }
  }
  return out;
}

void TraceSink::summarize(std::ostream& os) const {
  constexpr std::array<TraceEvent, 7> kAll = {
      TraceEvent::kModeChange,   TraceEvent::kPacketStored,
      TraceEvent::kPacketForwarded, TraceEvent::kComputed,
      TraceEvent::kResultEmitted,   TraceEvent::kCellDisabled,
      TraceEvent::kWordSalvaged};
  os << "trace: " << records_.size() << " events";
  if (!records_.empty()) {
    os << " over cycles [" << records_.front().cycle << ", "
       << records_.back().cycle << "]";
  }
  os << "\n";
  for (const TraceEvent e : kAll) {
    const std::size_t n = count(e);
    if (n != 0) {
      os << "  " << std::setw(15) << std::left << trace_event_name(e) << n
         << "\n";
    }
  }
}

void TraceSink::dump(std::ostream& os, std::size_t limit) const {
  std::size_t shown = 0;
  for (const TraceRecord& r : records_) {
    os << "cycle " << std::setw(6) << r.cycle << "  " << std::setw(15)
       << std::left << trace_event_name(r.event) << std::right << " cell("
       << int(r.cell.row) << "," << int(r.cell.col) << ")";
    if (r.event != TraceEvent::kModeChange &&
        r.event != TraceEvent::kCellDisabled) {
      os << " id=" << r.id;
    }
    os << "\n";
    if (limit != 0 && ++shown >= limit) {
      os << "... (" << records_.size() - shown << " more)\n";
      return;
    }
  }
}

}  // namespace nbx
