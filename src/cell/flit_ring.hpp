// flit_ring.hpp — fixed-capacity flit queue for the cell's bus ports.
//
// The per-port flit queues are bounded by construction: a bus delivers
// at most one flit per cycle and the cell drains one per cycle, so
// occupancy never exceeds a few packets (shift-out can momentarily hold
// the cell's own result packet plus forwarded traffic from below). A
// fixed ring of 64 bytes — six packets plus slack — replaces the former
// std::deque so the steady-state cell step performs zero heap
// allocations (tests/audit/alloc_audit_test.cpp holds the line).
//
// Overflow is a modelled fault, not UB: a push into a full ring drops
// the flit and reports it, and the owning cell counts it in
// stats().dropped_ring_overflow (the downstream assembler then discards
// the mangled frame on its checksum).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace nbx {

/// Bounded byte FIFO with deque-flavoured naming.
class FlitRing {
 public:
  /// Six 10-flit packets plus slack; static_assert in the cell layer
  /// keeps this a multiple of nothing — it just has to exceed the worst
  /// bounded occupancy with margin.
  static constexpr std::size_t kCapacity = 64;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == kCapacity; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Appends one flit. Returns false (dropping the flit) when full.
  bool push_back(std::uint8_t flit) {
    if (full()) {
      return false;
    }
    buf_[(head_ + size_) % kCapacity] = flit;
    ++size_;
    return true;
  }

  [[nodiscard]] std::uint8_t front() const { return buf_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) % kCapacity;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<std::uint8_t, kCapacity> buf_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nbx
