#include "workload/image_ops.hpp"

namespace nbx {

PixelOp reverse_video_op() { return {"reverse_video", Opcode::kXor, 0xFF}; }

PixelOp hue_shift_op() { return {"hue_shift", Opcode::kAdd, 0x0C}; }

PixelOp brightness_mask_op() {
  return {"brightness_mask", Opcode::kAnd, 0xF0};
}

PixelOp overlay_op() { return {"overlay", Opcode::kOr, 0x0F}; }

std::vector<PixelOp> paper_workloads() {
  return {reverse_video_op(), hue_shift_op()};
}

std::vector<PixelOp> extended_workloads() {
  return {reverse_video_op(), hue_shift_op(), brightness_mask_op(),
          overlay_op()};
}

Bitmap apply_golden(const Bitmap& in, const PixelOp& op) {
  Bitmap out(in.width(), in.height());
  for (std::size_t i = 0; i < in.pixel_count(); ++i) {
    out.set_pixel(i, golden_alu(op.op, in.pixel(i), op.constant));
  }
  return out;
}

}  // namespace nbx
