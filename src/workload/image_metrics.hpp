// image_metrics.hpp — image-quality metrics for fault-injected outputs.
//
// The paper scores workloads by the fraction of exactly-correct pixels.
// For the streaming-image application that motivates the NanoBox grid, a
// complementary question is how *bad* the wrong pixels are — a flipped
// LSB is invisible, a flipped MSB is not. These metrics quantify that.
#pragma once

#include <cstddef>

#include "workload/bitmap.hpp"

namespace nbx {

/// Mean squared error between two equal-sized images.
double mean_squared_error(const Bitmap& a, const Bitmap& b);

/// Peak signal-to-noise ratio in dB (peak = 255). Returns +infinity for
/// identical images.
double psnr_db(const Bitmap& a, const Bitmap& b);

/// Largest absolute per-pixel difference.
int max_abs_error(const Bitmap& a, const Bitmap& b);

/// Fraction (0..1) of pixels that match exactly — the paper's metric.
double exact_fraction(const Bitmap& a, const Bitmap& b);

/// Bundled report for bench/example output.
struct ImageQuality {
  double mse = 0.0;
  double psnr = 0.0;
  int max_error = 0;
  double percent_exact = 100.0;
};

/// Computes all metrics at once.
ImageQuality compare_images(const Bitmap& golden, const Bitmap& actual);

}  // namespace nbx
