// reduction.hpp — a non-streaming, dependency-carrying workload.
//
// Paper §7 (future work): "we can evaluate how the NanoBox Processor
// Grid may be adapted for non-streaming workloads." The paper's image
// ops are embarrassingly parallel; a pairwise-ADD reduction (checksum of
// a buffer) is the opposite: round k+1's operands are round k's results,
// so the control processor must run multiple full shift-in / compute /
// shift-out passes and carry data between them.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/instruction_stream.hpp"

namespace nbx {

/// Builds one reduction round: instruction i computes
/// values[2i] + values[2i+1] (an odd trailing element is carried through
/// as values[last] + 0). Instruction ids are the output indices.
std::vector<Instruction> reduction_round(
    const std::vector<std::uint8_t>& values);

/// Applies one golden reduction round.
std::vector<std::uint8_t> golden_reduction_round(
    const std::vector<std::uint8_t>& values);

/// The modulo-256 checksum the full reduction converges to.
std::uint8_t golden_checksum(const std::vector<std::uint8_t>& values);

/// Number of rounds needed to reduce `n` values to one.
std::size_t reduction_rounds(std::size_t n);

}  // namespace nbx
