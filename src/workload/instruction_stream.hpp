// instruction_stream.hpp — turning workloads into ALU instruction streams.
//
// Paper §3.2.1: a data packet "contain[s] a unique instruction ID, an ALU
// instruction, two operands, and the ID of the processor cell where the
// instruction will be computed". For the single-cell ALU experiments the
// stream is just (id, op, a, b, golden) tuples; the grid layer adds cell
// routing on top.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "workload/image_ops.hpp"

namespace nbx {

/// One ALU instruction with its precomputed golden result.
struct Instruction {
  std::uint16_t id = 0;  ///< unique instruction (pixel) ID
  Opcode op = Opcode::kAnd;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t golden = 0;
};

/// Expands a per-pixel op over a bitmap: instruction i computes
/// pixel_i <op> constant; ids are pixel indices.
std::vector<Instruction> make_stream(const Bitmap& image, const PixelOp& op);

/// Uniformly random instruction stream over all four opcodes (property
/// tests and stress benches).
std::vector<Instruction> random_stream(std::size_t count, Rng& rng);

/// Two-image stream: instruction i computes a.pixel(i) <op> b.pixel(i)
/// (blend/overlay/difference workloads — e.g. XOR gives the change mask
/// between frames, OR composites sprites). Dimensions must match.
std::vector<Instruction> make_binary_stream(const Bitmap& a,
                                            const Bitmap& b, Opcode op);

/// Golden result of a two-image op.
Bitmap apply_golden_binary(const Bitmap& a, const Bitmap& b, Opcode op);

/// Result of decoding a serialized instruction stream.
enum class StreamDecodeStatus : std::uint8_t {
  kOk,
  kTruncated,       ///< fewer bytes than the header promises
  kBadMagic,        ///< not an NBXS blob
  kBadVersion,      ///< future/unknown format version
  kBadOpcode,       ///< a record's opcode field is not a defined opcode
  kBadGolden,       ///< a record's golden byte != golden_alu(op, a, b)
  kBadChecksum,     ///< payload checksum mismatch
  kTrailingBytes,   ///< well-formed stream followed by extra bytes
};

/// Human-readable status name ("kOk", "kTruncated", ...).
std::string_view stream_decode_status_name(StreamDecodeStatus s);

/// Serializes a stream as the NBXS wire format (paper §3.2.1's data
/// packets, flattened): magic "NBXS", version byte, u32 LE record count,
/// then 6 bytes per record (u16 LE id, opcode byte, a, b, golden),
/// terminated by a one-byte XOR checksum over the payload. Every valid
/// stream round-trips through decode_stream bit-exactly.
std::vector<std::uint8_t> encode_stream(
    const std::vector<Instruction>& stream);

/// Parses an NBXS blob. On kOk, `out` holds the decoded stream;
/// any other status leaves `out` empty — corrupt or truncated input is
/// rejected whole, never partially applied.
StreamDecodeStatus decode_stream(const std::vector<std::uint8_t>& bytes,
                                 std::vector<Instruction>* out);

/// Reassembles computed results (paired by instruction id) into a bitmap
/// with the same dimensions as `reference`. Missing ids keep the
/// reference's pixel value. Returns the number of ids applied.
std::size_t reassemble_image(
    const std::vector<std::pair<std::uint16_t, std::uint8_t>>& results,
    Bitmap& reference);

}  // namespace nbx
