// image_ops.hpp — the paper's image-processing workload definitions.
//
// Paper §4: "Reversing the video of this bitmap is accomplished by
// computing the XOR of each pixel with a mask of '11111111'. We shift the
// hue of the bitmap by adding a constant '00001100' to each pixel."
//
// A PixelOp is one ALU instruction applied uniformly to each pixel:
// exactly the data-parallel streaming shape that motivates the NanoBox
// grid. Extension ops exercise the remaining opcodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/bitmap.hpp"

namespace nbx {

/// One per-pixel ALU operation: result = pixel <op> constant.
struct PixelOp {
  std::string name;
  Opcode op;
  std::uint8_t constant;
};

/// The paper's reverse-video workload: pixel XOR 0xFF.
PixelOp reverse_video_op();

/// The paper's hue-shift workload: pixel ADD 0x0C.
PixelOp hue_shift_op();

/// Extension: brightness mask, pixel AND 0xF0 (posterize to 16 levels).
PixelOp brightness_mask_op();

/// Extension: overlay, pixel OR 0x0F (lift dark tones).
PixelOp overlay_op();

/// The two paper workloads in evaluation order.
std::vector<PixelOp> paper_workloads();

/// Paper workloads plus extensions (for the wider benches/examples).
std::vector<PixelOp> extended_workloads();

/// Golden application of `op` to every pixel (no faults).
Bitmap apply_golden(const Bitmap& in, const PixelOp& op);

}  // namespace nbx
