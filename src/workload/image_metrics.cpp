#include "workload/image_metrics.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace nbx {

double mean_squared_error(const Bitmap& a, const Bitmap& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.pixel_count() == 0) {
    return 0.0;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    const double d =
        static_cast<double>(a.pixel(i)) - static_cast<double>(b.pixel(i));
    acc += d * d;
  }
  return acc / static_cast<double>(a.pixel_count());
}

double psnr_db(const Bitmap& a, const Bitmap& b) {
  const double mse = mean_squared_error(a, b);
  if (mse == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

int max_abs_error(const Bitmap& a, const Bitmap& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  int worst = 0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    worst = std::max(worst, std::abs(static_cast<int>(a.pixel(i)) -
                                     static_cast<int>(b.pixel(i))));
  }
  return worst;
}

double exact_fraction(const Bitmap& a, const Bitmap& b) {
  if (a.pixel_count() == 0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(a.diff_count(b)) /
                   static_cast<double>(a.pixel_count());
}

ImageQuality compare_images(const Bitmap& golden, const Bitmap& actual) {
  ImageQuality q;
  q.mse = mean_squared_error(golden, actual);
  q.psnr = psnr_db(golden, actual);
  q.max_error = max_abs_error(golden, actual);
  q.percent_exact = 100.0 * exact_fraction(golden, actual);
  return q;
}

}  // namespace nbx
