#include "workload/bitmap.hpp"

#include <cstdlib>
#include <fstream>

namespace nbx {

Bitmap::Bitmap(std::size_t width, std::size_t height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

std::size_t Bitmap::diff_count(const Bitmap& other) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    if (pixels_[i] != other.pixels_[i]) {
      ++n;
    }
  }
  return n;
}

Bitmap Bitmap::paper_test_image(std::uint64_t seed) {
  Rng rng(seed);
  return random(8, 8, rng);
}

Bitmap Bitmap::random(std::size_t width, std::size_t height, Rng& rng) {
  Bitmap bm(width, height);
  for (std::size_t i = 0; i < bm.pixels_.size(); ++i) {
    bm.pixels_[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  return bm;
}

Bitmap Bitmap::gradient(std::size_t width, std::size_t height) {
  Bitmap bm(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      bm.set(x, y,
             static_cast<std::uint8_t>(width > 1 ? x * 255 / (width - 1) : 0));
    }
  }
  return bm;
}

Bitmap Bitmap::checkerboard(std::size_t width, std::size_t height,
                            std::size_t tile, std::uint8_t dark,
                            std::uint8_t light) {
  Bitmap bm(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const bool d = ((x / tile) + (y / tile)) % 2 == 0;
      bm.set(x, y, d ? dark : light);
    }
  }
  return bm;
}

bool Bitmap::save_pgm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  f << "P5\n" << width_ << " " << height_ << "\n255\n";
  f.write(reinterpret_cast<const char*>(pixels_.data()),
          static_cast<std::streamsize>(pixels_.size()));
  return static_cast<bool>(f);
}

std::optional<Bitmap> Bitmap::load_pgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return std::nullopt;
  }
  // Header tokens with '#' comment support.
  auto next_token = [&]() -> std::optional<std::string> {
    std::string tok;
    while (f >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(f, rest);  // discard the comment line
        continue;
      }
      return tok;
    }
    return std::nullopt;
  };
  const auto magic = next_token();
  if (!magic || *magic != "P5") {
    return std::nullopt;
  }
  const auto w_tok = next_token();
  const auto h_tok = next_token();
  const auto max_tok = next_token();
  if (!w_tok || !h_tok || !max_tok) {
    return std::nullopt;
  }
  const long w = std::strtol(w_tok->c_str(), nullptr, 10);
  const long h = std::strtol(h_tok->c_str(), nullptr, 10);
  const long maxv = std::strtol(max_tok->c_str(), nullptr, 10);
  if (w <= 0 || h <= 0 || maxv != 255) {
    return std::nullopt;
  }
  f.get();  // the single whitespace byte after the header
  Bitmap bm(static_cast<std::size_t>(w), static_cast<std::size_t>(h));
  f.read(reinterpret_cast<char*>(bm.pixels_.data()),
         static_cast<std::streamsize>(bm.pixels_.size()));
  if (f.gcount() != static_cast<std::streamsize>(bm.pixels_.size())) {
    return std::nullopt;
  }
  return bm;
}

}  // namespace nbx
