// bitmap.hpp — 8-bit grayscale bitmaps, the NanoBox demo data type.
//
// The paper's concept demonstration targets image processing: "Our test
// workload bitmap contains 64, 8-bit pixels" (§4). Bitmaps here are
// deterministic synthetic images (the paper's pixel provenance is
// irrelevant to fault masking — only the 8-bit ops matter), plus simple
// PGM I/O so examples can emit viewable artefacts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nbx {

/// A width x height raster of 8-bit pixels, row-major.
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(std::size_t width, std::size_t height, std::uint8_t fill = 0);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const { return pixels_.size(); }

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  void set(std::size_t x, std::size_t y, std::uint8_t v) {
    pixels_[y * width_ + x] = v;
  }

  [[nodiscard]] std::uint8_t pixel(std::size_t i) const { return pixels_[i]; }
  void set_pixel(std::size_t i, std::uint8_t v) { pixels_[i] = v; }

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const {
    return pixels_;
  }

  /// Number of pixels differing from `other` (dimensions must match).
  [[nodiscard]] std::size_t diff_count(const Bitmap& other) const;

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

  /// The paper's 64-pixel (8x8) test bitmap, seeded deterministic noise.
  static Bitmap paper_test_image(std::uint64_t seed = 42);

  /// Seeded uniform-random bitmap of arbitrary size.
  static Bitmap random(std::size_t width, std::size_t height, Rng& rng);

  /// Horizontal gradient (x scaled to 0..255) — handy for eyeballing ops.
  static Bitmap gradient(std::size_t width, std::size_t height);

  /// Checkerboard with the given tile size and two gray levels.
  static Bitmap checkerboard(std::size_t width, std::size_t height,
                             std::size_t tile, std::uint8_t dark = 0x20,
                             std::uint8_t light = 0xdf);

  /// Writes binary PGM (P5). Returns false on I/O failure.
  [[nodiscard]] bool save_pgm(const std::string& path) const;

  /// Loads a binary PGM (P5, maxval 255, '#' comments allowed).
  /// Returns nullopt on malformed input or I/O failure.
  static std::optional<Bitmap> load_pgm(const std::string& path);

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace nbx
