#include "workload/reduction.hpp"

namespace nbx {

std::vector<Instruction> reduction_round(
    const std::vector<std::uint8_t>& values) {
  std::vector<Instruction> stream;
  stream.reserve((values.size() + 1) / 2);
  for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i / 2);
    ins.op = Opcode::kAdd;
    ins.a = values[i];
    ins.b = values[i + 1];
    ins.golden = golden_alu(ins.op, ins.a, ins.b);
    stream.push_back(ins);
  }
  if (values.size() % 2 == 1) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(values.size() / 2);
    ins.op = Opcode::kAdd;
    ins.a = values.back();
    ins.b = 0;
    ins.golden = values.back();
    stream.push_back(ins);
  }
  return stream;
}

std::vector<std::uint8_t> golden_reduction_round(
    const std::vector<std::uint8_t>& values) {
  std::vector<std::uint8_t> out;
  out.reserve((values.size() + 1) / 2);
  for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(values[i] + values[i + 1]));
  }
  if (values.size() % 2 == 1) {
    out.push_back(values.back());
  }
  return out;
}

std::uint8_t golden_checksum(const std::vector<std::uint8_t>& values) {
  std::uint8_t acc = 0;
  for (const std::uint8_t v : values) {
    acc = static_cast<std::uint8_t>(acc + v);
  }
  return acc;
}

std::size_t reduction_rounds(std::size_t n) {
  std::size_t rounds = 0;
  while (n > 1) {
    n = (n + 1) / 2;
    ++rounds;
  }
  return rounds;
}

}  // namespace nbx
