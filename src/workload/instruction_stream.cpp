#include "workload/instruction_stream.hpp"

#include <algorithm>
#include <iterator>

namespace nbx {

std::vector<Instruction> make_stream(const Bitmap& image, const PixelOp& op) {
  std::vector<Instruction> stream;
  stream.reserve(image.pixel_count());
  for (std::size_t i = 0; i < image.pixel_count(); ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = op.op;
    ins.a = image.pixel(i);
    ins.b = op.constant;
    ins.golden = golden_alu(op.op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

std::vector<Instruction> random_stream(std::size_t count, Rng& rng) {
  std::vector<Instruction> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = kAllOpcodes[rng.below(4)];
    ins.a = static_cast<std::uint8_t>(rng.below(256));
    ins.b = static_cast<std::uint8_t>(rng.below(256));
    ins.golden = golden_alu(ins.op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

std::vector<Instruction> make_binary_stream(const Bitmap& a,
                                            const Bitmap& b, Opcode op) {
  std::vector<Instruction> stream;
  stream.reserve(a.pixel_count());
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = op;
    ins.a = a.pixel(i);
    ins.b = b.pixel(i);
    ins.golden = golden_alu(op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

Bitmap apply_golden_binary(const Bitmap& a, const Bitmap& b, Opcode op) {
  Bitmap out(a.width(), a.height());
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    out.set_pixel(i, golden_alu(op, a.pixel(i), b.pixel(i)));
  }
  return out;
}

namespace {

constexpr std::uint8_t kStreamMagic[4] = {'N', 'B', 'X', 'S'};
constexpr std::uint8_t kStreamVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 1 + 4;  // magic, version, count
constexpr std::size_t kRecordBytes = 6;  // id lo/hi, op, a, b, golden

std::uint8_t xor_checksum(const std::vector<std::uint8_t>& bytes,
                          std::size_t lo, std::size_t hi) {
  std::uint8_t sum = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    sum = static_cast<std::uint8_t>(sum ^ bytes[i]);
  }
  return sum;
}

}  // namespace

std::string_view stream_decode_status_name(StreamDecodeStatus s) {
  switch (s) {
    case StreamDecodeStatus::kOk:
      return "kOk";
    case StreamDecodeStatus::kTruncated:
      return "kTruncated";
    case StreamDecodeStatus::kBadMagic:
      return "kBadMagic";
    case StreamDecodeStatus::kBadVersion:
      return "kBadVersion";
    case StreamDecodeStatus::kBadOpcode:
      return "kBadOpcode";
    case StreamDecodeStatus::kBadGolden:
      return "kBadGolden";
    case StreamDecodeStatus::kBadChecksum:
      return "kBadChecksum";
    case StreamDecodeStatus::kTrailingBytes:
      return "kTrailingBytes";
  }
  return "?";
}

std::vector<std::uint8_t> encode_stream(
    const std::vector<Instruction>& stream) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + kRecordBytes * stream.size() + 1);
  bytes.insert(bytes.end(), std::begin(kStreamMagic),
               std::end(kStreamMagic));
  bytes.push_back(kStreamVersion);
  const auto count = static_cast<std::uint32_t>(stream.size());
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>(count >> shift));
  }
  for (const Instruction& ins : stream) {
    bytes.push_back(static_cast<std::uint8_t>(ins.id & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(ins.id >> 8));
    bytes.push_back(static_cast<std::uint8_t>(ins.op));
    bytes.push_back(ins.a);
    bytes.push_back(ins.b);
    bytes.push_back(ins.golden);
  }
  bytes.push_back(xor_checksum(bytes, kHeaderBytes, bytes.size()));
  return bytes;
}

StreamDecodeStatus decode_stream(const std::vector<std::uint8_t>& bytes,
                                 std::vector<Instruction>* out) {
  out->clear();
  if (bytes.size() < kHeaderBytes + 1) {
    return bytes.size() >= 4 && !std::equal(std::begin(kStreamMagic),
                                            std::end(kStreamMagic),
                                            bytes.begin())
               ? StreamDecodeStatus::kBadMagic
               : StreamDecodeStatus::kTruncated;
  }
  if (!std::equal(std::begin(kStreamMagic), std::end(kStreamMagic),
                  bytes.begin())) {
    return StreamDecodeStatus::kBadMagic;
  }
  if (bytes[4] != kStreamVersion) {
    return StreamDecodeStatus::kBadVersion;
  }
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) {
    count |= static_cast<std::uint32_t>(bytes[5 + i]) << (8 * i);
  }
  const std::size_t expected =
      kHeaderBytes + kRecordBytes * static_cast<std::size_t>(count) + 1;
  if (bytes.size() < expected) {
    return StreamDecodeStatus::kTruncated;
  }
  if (bytes.size() > expected) {
    return StreamDecodeStatus::kTrailingBytes;
  }
  if (xor_checksum(bytes, kHeaderBytes, expected - 1) !=
      bytes[expected - 1]) {
    return StreamDecodeStatus::kBadChecksum;
  }
  std::vector<Instruction> decoded;
  decoded.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    const std::size_t at = kHeaderBytes + kRecordBytes * r;
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(
        bytes[at] | (static_cast<std::uint16_t>(bytes[at + 1]) << 8));
    if (!opcode_is_valid(bytes[at + 2])) {
      return StreamDecodeStatus::kBadOpcode;
    }
    ins.op = static_cast<Opcode>(bytes[at + 2]);
    ins.a = bytes[at + 3];
    ins.b = bytes[at + 4];
    ins.golden = bytes[at + 5];
    // The golden byte is derived data; a record whose golden disagrees
    // with the opcode semantics is corrupt even if the checksum holds
    // (e.g. a forged blob), and accepting it would poison every
    // correctness score downstream.
    if (ins.golden != golden_alu(ins.op, ins.a, ins.b)) {
      return StreamDecodeStatus::kBadGolden;
    }
    decoded.push_back(ins);
  }
  *out = std::move(decoded);
  return StreamDecodeStatus::kOk;
}

std::size_t reassemble_image(
    const std::vector<std::pair<std::uint16_t, std::uint8_t>>& results,
    Bitmap& reference) {
  std::size_t applied = 0;
  for (const auto& [id, value] : results) {
    if (id < reference.pixel_count()) {
      reference.set_pixel(id, value);
      ++applied;
    }
  }
  return applied;
}

}  // namespace nbx
