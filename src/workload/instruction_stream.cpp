#include "workload/instruction_stream.hpp"

namespace nbx {

std::vector<Instruction> make_stream(const Bitmap& image, const PixelOp& op) {
  std::vector<Instruction> stream;
  stream.reserve(image.pixel_count());
  for (std::size_t i = 0; i < image.pixel_count(); ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = op.op;
    ins.a = image.pixel(i);
    ins.b = op.constant;
    ins.golden = golden_alu(op.op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

std::vector<Instruction> random_stream(std::size_t count, Rng& rng) {
  std::vector<Instruction> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = kAllOpcodes[rng.below(4)];
    ins.a = static_cast<std::uint8_t>(rng.below(256));
    ins.b = static_cast<std::uint8_t>(rng.below(256));
    ins.golden = golden_alu(ins.op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

std::vector<Instruction> make_binary_stream(const Bitmap& a,
                                            const Bitmap& b, Opcode op) {
  std::vector<Instruction> stream;
  stream.reserve(a.pixel_count());
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    Instruction ins;
    ins.id = static_cast<std::uint16_t>(i);
    ins.op = op;
    ins.a = a.pixel(i);
    ins.b = b.pixel(i);
    ins.golden = golden_alu(op, ins.a, ins.b);
    stream.push_back(ins);
  }
  return stream;
}

Bitmap apply_golden_binary(const Bitmap& a, const Bitmap& b, Opcode op) {
  Bitmap out(a.width(), a.height());
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    out.set_pixel(i, golden_alu(op, a.pixel(i), b.pixel(i)));
  }
  return out;
}

std::size_t reassemble_image(
    const std::vector<std::pair<std::uint16_t, std::uint8_t>>& results,
    Bitmap& reference) {
  std::size_t applied = 0;
  for (const auto& [id, value] : results) {
    if (id < reference.pixel_count()) {
      reference.set_pixel(id, value);
      ++applied;
    }
  }
  return applied;
}

}  // namespace nbx
