// quickstart — the five-minute tour of the NanoBox library:
//  1. build a Table-2 ALU,
//  2. run an instruction fault-free,
//  3. inject the paper's transient faults and watch the recursive
//     fault masking absorb them,
//  4. run one figure-style data point on the TrialEngine.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "alu/alu_factory.hpp"
#include "fault/fit.hpp"
#include "fault/mask_generator.hpp"
#include "fault/sweep.hpp"
#include "sim/trial_engine.hpp"

int main() {
  using namespace nbx;

  // 1. The paper's best configuration: TMR lookup tables inside three
  //    voting ALU copies ("aluss", 5040 fault-injection sites).
  const auto alu = make_alu("aluss");
  std::cout << "Built " << alu->name() << " with " << alu->fault_sites()
            << " fault-injection sites\n";

  // 2. Fault-free computation: 0x5A XOR 0xFF (the paper's reverse-video
  //    pixel operation).
  const AluOutput clean = alu->compute(Opcode::kXor, 0x5A, 0xFF, MaskView{});
  std::cout << "0x5A XOR 0xFF = 0x" << std::hex << int(clean.value)
            << std::dec << " (expected 0xA5)\n";

  // 3. Now at a raw FIT rate twenty orders of magnitude above CMOS:
  //    3% of all stored bits flip, freshly, on every computation.
  const double pct = 3.0;
  std::cout << "\nInjecting " << pct << "% transient faults ("
            << MaskGenerator(alu->fault_sites(), pct).faults_per_computation()
            << " flipped bits per computation, raw FIT "
            << fit_from_percent(alu->fault_sites(), pct) << ")\n";
  Rng rng(42);
  const MaskGenerator gen(alu->fault_sites(), pct);
  int correct = 0;
  const int runs = 1000;
  ModuleStats stats;
  for (int i = 0; i < runs; ++i) {
    const BitVec mask = gen.generate(rng);
    const AluOutput out = alu->compute(Opcode::kXor, 0x5A, 0xFF,
                                       MaskView(mask, 0, mask.size()),
                                       &stats);
    if (out.value == 0xA5) {
      ++correct;
    }
  }
  std::cout << correct << "/" << runs
            << " computations correct despite the fault storm\n";
  std::cout << "(bit-level TMR disagreements absorbed: "
            << stats.lut.tmr_disagreements
            << ", module votes with disagreement: "
            << stats.voter_disagreements << ")\n";

  // 4. One paper-protocol data point: both image workloads, five trials
  //    each, mean of ten samples, evaluated on the unified TrialEngine.
  const auto streams = paper_streams();
  const TrialEngine engine;
  SweepSpec spec;
  spec.percents = {pct};
  spec.seed = 7;
  const DataPoint point = engine.point(*alu, streams, spec);
  std::cout << "\nFigure-9-style data point @ " << pct << "%: "
            << point.mean_percent_correct << "% correct (stddev "
            << point.stddev << ", " << point.samples << " samples)\n";
  std::cout << "Paper claim at this rate: 98% or better.\n";
  return 0;
}
