// nbxsim — command-line front-end to the NanoBox fault-injection
// simulator. Runs single-ALU sweeps, defect studies, or full figure
// reproductions without writing any code.
//
// Usage:
//   nbxsim --list
//   nbxsim --alu aluss --percent 3 [--trials 5] [--seed 42]
//   nbxsim --alu aluss --sweep [--policy round|floor|bernoulli|burst]
//          [--burst 4] [--trials 5]
//   nbxsim --alu aluts --defects 0.01 [--percent 0] [--chips 10]
//   nbxsim --figure 7|8|9 [--trials 5]
#include <iostream>

#include "alu/alu_factory.hpp"
#include "common/cli.hpp"
#include "fault/fit.hpp"
#include "fault/sweep.hpp"
#include "sim/experiment.hpp"
#include "sim/figure.hpp"
#include "sim/table_render.hpp"

namespace {

using namespace nbx;

int usage(const std::string& program) {
  std::cerr
      << "usage:\n"
      << "  " << program << " --list\n"
      << "  " << program << " --alu NAME --percent P [--trials N] [--seed S]\n"
      << "  " << program << " --alu NAME --sweep [--policy round|floor|"
         "bernoulli|burst] [--burst L]\n"
      << "  " << program << " --alu NAME --defects D [--percent P] "
         "[--chips N]\n"
      << "  " << program << " --figure 7|8|9 [--trials N]\n";
  return 2;
}

FaultCountPolicy parse_policy(const std::string& s) {
  if (s == "floor") {
    return FaultCountPolicy::kFloor;
  }
  if (s == "bernoulli") {
    return FaultCountPolicy::kBernoulli;
  }
  if (s == "burst") {
    return FaultCountPolicy::kBurst;
  }
  return FaultCountPolicy::kRoundNearest;
}

int run_list() {
  TextTable t({"ALU", "sites", "description"});
  for (const AluSpec& s : all_specs()) {
    t.add_row({s.name, std::to_string(s.expected_sites), s.description});
  }
  t.print(std::cout);
  return 0;
}

int run_figure_cmd(int figure, int trials, std::uint64_t seed) {
  const FigureSpec spec = figure == 7   ? figure7_spec()
                          : figure == 8 ? figure8_spec()
                                        : figure9_spec();
  const FigureResult fig = run_figure(spec, paper_sweep(), trials, seed);
  print_figure(std::cout, fig);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string bad_flags = args.unknown_flag_message(
      {"list", "alu", "percent", "trials", "seed", "sweep", "policy",
       "burst", "defects", "chips", "figure"});
  if (!bad_flags.empty()) {
    std::cerr << bad_flags << "\n";
    return usage(args.program());
  }
  if (args.has("list")) {
    return run_list();
  }
  const auto trials = static_cast<int>(args.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.has("figure")) {
    const auto f = args.get_int("figure").value_or(0);
    if (f < 7 || f > 9) {
      std::cerr << "--figure must be 7, 8 or 9\n";
      return usage(args.program());
    }
    return run_figure_cmd(static_cast<int>(f), trials, seed);
  }
  if (!args.has("alu")) {
    return usage(args.program());
  }
  const std::string name = args.get("alu");
  const auto alu = make_alu(name);
  if (alu == nullptr) {
    std::cerr << "unknown ALU '" << name << "' (use --list)\n";
    return 2;
  }
  const auto streams = paper_streams(seed);

  if (args.has("defects")) {
    DefectConfig cfg;
    cfg.defect_density = args.get_double("defects", 0.0);
    cfg.transient_percent = args.get_double("percent", 0.0);
    const auto chips = static_cast<int>(args.get_int("chips", 10));
    const DataPoint p = run_defect_point(*alu, streams, cfg, chips, seed);
    std::cout << name << " @ defect density "
              << fmt_double(cfg.defect_density * 100, 2) << "% + "
              << fmt_double(cfg.transient_percent, 2)
              << "% transients: " << fmt_double(p.mean_percent_correct, 2)
              << "% correct (stddev " << fmt_double(p.stddev, 2) << ", "
              << p.samples << " chips)\n";
    return 0;
  }

  const FaultCountPolicy policy = parse_policy(args.get("policy", "round"));
  const auto burst = static_cast<std::size_t>(args.get_int("burst", 1));
  const TrialEngine engine;
  SweepSpec spec;
  spec.trials_per_workload = trials;
  spec.seed = seed;
  spec.policy = policy;
  spec.burst_length = burst;

  if (args.has("sweep")) {
    TextTable t({"fault%", "FIT", "% correct", "stddev"});
    spec.percents = paper_sweep();
    const std::vector<DataPoint> points = engine.sweep(*alu, streams, spec);
    for (const DataPoint& p : points) {
      t.add_row({fmt_double(p.fault_percent, 2),
                 fmt_sci(fit_from_percent(alu->fault_sites(),
                                          p.fault_percent), 2),
                 fmt_double(p.mean_percent_correct, 2),
                 fmt_double(p.stddev, 2)});
    }
    std::cout << name << " (" << alu->fault_sites() << " sites)\n";
    t.print(std::cout);
    return 0;
  }

  const double pct = args.get_double("percent", 1.0);
  spec.percents = {pct};
  const DataPoint p = engine.point(*alu, streams, spec);
  std::cout << name << " @ " << fmt_double(pct, 2) << "% faults (FIT "
            << fmt_sci(fit_from_percent(alu->fault_sites(), pct), 2)
            << "): " << fmt_double(p.mean_percent_correct, 2)
            << "% correct (stddev " << fmt_double(p.stddev, 2) << ", "
            << p.samples << " samples)\n";
  return 0;
}
