// image_pipeline — the paper's motivating application (§4): streaming
// image processing on the NanoBox Processor Grid. Runs the two paper
// workloads (reverse video, hue shift) plus the extension ops through a
// cycle-accurate 4x4 grid and writes before/after PGM images.
//
// Build & run:  ./build/examples/image_pipeline [out_dir]
#include <iostream>
#include <string>

#include "grid/control_processor.hpp"
#include "workload/image_ops.hpp"

int main(int argc, char** argv) {
  using namespace nbx;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A 32x16 source image (512 pixels) across a 4x4 grid of cells.
  Rng rng(2026);
  Bitmap image = Bitmap::checkerboard(32, 16, 4, 0x30, 0xC8);
  // Mix in noise so every opcode has interesting operands.
  for (std::size_t i = 0; i < image.pixel_count(); i += 3) {
    image.set_pixel(i, static_cast<std::uint8_t>(
                           image.pixel(i) ^ rng.below(32)));
  }
  if (!image.save_pgm(out_dir + "/input.pgm")) {
    std::cerr << "warning: could not write " << out_dir << "/input.pgm\n";
  }

  std::cout << "NanoBox image pipeline: 32x16 image, 4x4 grid, 32-word "
               "cells\n\n";
  for (const PixelOp& op : extended_workloads()) {
    NanoBoxGrid grid(4, 4, CellConfig{});
    ControlProcessor cp(grid);
    GridRunReport report;
    const Bitmap out = cp.run_image_op(image, op, {}, &report);
    const Bitmap golden = apply_golden(image, op);
    std::cout << op.name << ": " << report.percent_correct
              << "% pixels correct  (shift-in " << report.shift_in_cycles
              << " cy, compute " << report.compute_cycles
              << " cy, shift-out " << report.shift_out_cycles
              << " cy, forwarded " << report.packets_forwarded
              << " packets)\n";
    if (out.diff_count(golden) != 0) {
      std::cout << "  WARNING: " << out.diff_count(golden)
                << " pixels differ from golden\n";
    }
    (void)out.save_pgm(out_dir + "/" + op.name + ".pgm");
  }

  std::cout << "\nNow the same pipeline on unreliable hardware (TMR cell "
               "ALUs, 2% transient faults per pass):\n";
  CellConfig faulty;
  faulty.alu_coding = LutCoding::kTmr;
  faulty.alu_fault_percent = 2.0;
  NanoBoxGrid grid(4, 4, faulty);
  ControlProcessor cp(grid);
  GridRunReport report;
  const Bitmap noisy = cp.run_image_op(image, reverse_video_op(), {}, &report);
  std::cout << "reverse_video @ 2% faults: " << report.percent_correct
            << "% pixels correct ("
            << apply_golden(image, reverse_video_op()).diff_count(noisy)
            << " corrupted pixels out of " << image.pixel_count() << ")\n";
  (void)noisy.save_pgm(out_dir + "/reverse_video_faulty.pgm");
  std::cout << "\nPGM images written to " << out_dir << "/\n";
  return 0;
}
