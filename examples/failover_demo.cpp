// failover_demo — system-level fault tolerance in action (paper §2.3):
// cells die mid-computation, the watchdog notices their silent
// heartbeats, salvages their unfinished memory words to neighbours, and
// the image still comes out right.
//
// Build & run:  ./build/examples/failover_demo
#include <iostream>

#include "grid/control_processor.hpp"
#include "workload/image_ops.hpp"

int main() {
  using namespace nbx;
  Rng rng(7);
  const Bitmap image = Bitmap::random(16, 8, rng);  // 128 pixels

  std::cout << "Failover demo: 3x3 NanoBox grid, 128-pixel hue shift\n\n";

  // Scenario 1: healthy grid.
  {
    NanoBoxGrid grid(3, 3, CellConfig{});
    ControlProcessor cp(grid);
    GridRunReport r;
    (void)cp.run_image_op(image, hue_shift_op(), {}, &r);
    std::cout << "healthy grid:        " << r.percent_correct
              << "% correct, 0 cells lost\n";
  }

  // Scenario 2: two cells die mid-compute, routers survive, watchdog on.
  {
    NanoBoxGrid grid(3, 3, CellConfig{});
    ControlProcessor cp(grid);
    GridRunOptions opt;
    opt.watchdog_interval = 16;
    opt.compute_cycles = 600;
    opt.kills = {KillEvent{CellId{1, 1}, 5, true},
                 KillEvent{CellId{2, 0}, 9, true}};
    GridRunReport r;
    (void)cp.run_image_op(image, hue_shift_op(), opt, &r);
    std::cout << "2 deaths + watchdog: " << r.percent_correct
              << "% correct  (disabled " << r.watchdog.cells_disabled
              << " cells, salvaged " << r.watchdog.words_salvaged
              << " words, lost " << r.watchdog.words_lost << ")\n";
  }

  // Scenario 3: same deaths, watchdog disabled — work is stranded.
  {
    NanoBoxGrid grid(3, 3, CellConfig{});
    ControlProcessor cp(grid);
    GridRunOptions opt;
    opt.enable_watchdog = false;
    opt.compute_cycles = 600;
    opt.kills = {KillEvent{CellId{1, 1}, 5, true},
                 KillEvent{CellId{2, 0}, 9, true}};
    GridRunReport r;
    (void)cp.run_image_op(image, hue_shift_op(), opt, &r);
    std::cout << "2 deaths, no dog:    " << r.percent_correct
              << "% correct  (" << r.results_missing
              << " pixels never computed)\n";
  }

  // Scenario 4: a death with a dead router — memory unsalvageable.
  {
    NanoBoxGrid grid(3, 3, CellConfig{});
    ControlProcessor cp(grid);
    GridRunOptions opt;
    opt.watchdog_interval = 16;
    opt.compute_cycles = 600;
    opt.kills = {KillEvent{CellId{1, 1}, 5, /*router_survives=*/false}};
    GridRunReport r;
    (void)cp.run_image_op(image, hue_shift_op(), opt, &r);
    std::cout << "1 dead router:       " << r.percent_correct
              << "% correct  (lost " << r.watchdog.words_lost
              << " words for good)\n";
  }

  std::cout << "\nThe watchdog + salvage path is the system level of the "
               "recursive hierarchy: faults that defeat the bit and module "
               "levels (an entire cell going silent) are absorbed by "
               "redistributing the cell's unfinished memory words.\n";
  return 0;
}
