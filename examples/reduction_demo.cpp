// reduction_demo — the non-streaming workload of the paper's future work
// (§7): a pairwise-ADD checksum reduction, where every round's operands
// are the previous round's results. The control processor drives one
// full shift-in / compute / shift-out pass per round and carries the
// data between passes.
//
// Build & run:  ./build/examples/reduction_demo
#include <iostream>

#include "grid/control_processor.hpp"
#include "workload/reduction.hpp"

int main() {
  using namespace nbx;
  Rng rng(2026);
  std::vector<std::uint8_t> values(128);
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(rng.below(256));
  }
  const std::uint8_t expected = golden_checksum(values);

  std::cout << "Checksum reduction of " << values.size()
            << " bytes on a 2x2 NanoBox grid ("
            << reduction_rounds(values.size()) << " rounds)\n\n";

  NanoBoxGrid grid(2, 2, CellConfig{});
  ControlProcessor cp(grid);
  std::vector<GridRunReport> rounds;
  const std::uint8_t result = cp.run_reduction(values, {}, &rounds);

  std::uint64_t total_cycles = 0;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const auto& rep = rounds[r];
    const std::uint64_t cycles =
        rep.shift_in_cycles + rep.compute_cycles + rep.shift_out_cycles;
    total_cycles += cycles;
    std::cout << "round " << r << ": " << rep.instructions
              << " adds, " << cycles << " cycles, "
              << rep.percent_correct << "% correct\n";
  }
  std::cout << "\nresult 0x" << std::hex << int(result) << ", expected 0x"
            << int(expected) << std::dec
            << (result == expected ? "  -- MATCH\n" : "  -- MISMATCH\n");
  std::cout << "total " << total_cycles << " grid cycles\n";

  // The same reduction with a cell failing during round 0: the watchdog
  // salvages its words and later rounds avoid the corpse.
  std::cout << "\nNow with a cell death during round 0 (router survives):\n";
  NanoBoxGrid grid2(2, 2, CellConfig{});
  ControlProcessor cp2(grid2);
  GridRunOptions opt;
  opt.watchdog_interval = 8;
  opt.compute_cycles = 400;
  opt.kills = {KillEvent{CellId{0, 0}, 3, true}};
  std::vector<GridRunReport> rounds2;
  const std::uint8_t result2 = cp2.run_reduction(values, opt, &rounds2);
  std::cout << "disabled cells: " << rounds2[0].watchdog.cells_disabled
            << ", salvaged words: " << rounds2[0].watchdog.words_salvaged
            << "\n";
  std::cout << "result 0x" << std::hex << int(result2) << std::dec
            << (result2 == expected ? "  -- still correct\n"
                                    : "  -- corrupted\n");
  return result == expected && result2 == expected ? 0 : 1;
}
