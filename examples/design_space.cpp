// design_space — ranks every ALU implementation in the library (the
// paper's twelve plus all extensions) by reliability at representative
// fault rates, alongside its area proxy: the table a designer would use
// to pick a configuration for a target device technology.
//
// Build & run:  ./build/examples/design_space [fault% ...]
#include <algorithm>
#include <iostream>

#include "alu/alu_factory.hpp"
#include "fault/fit.hpp"
#include "fault/sweep.hpp"
#include "sim/trial_engine.hpp"
#include "sim/table_render.hpp"

int main(int argc, char** argv) {
  using namespace nbx;
  std::vector<double> percents;
  for (int i = 1; i < argc; ++i) {
    percents.push_back(std::atof(argv[i]));
  }
  if (percents.empty()) {
    percents = {1.0, 3.0, 9.0};
  }
  const auto streams = paper_streams();
  const double base_area =
      static_cast<double>(find_spec("alunn")->expected_sites);

  struct Row {
    std::string name;
    std::size_t sites;
    double area;
    std::vector<double> correct;
    double score;  // accuracy at the middle rate, for ranking
  };
  std::vector<Row> rows;
  std::cout << "Evaluating " << all_specs().size() << " ALU designs at ";
  for (const double p : percents) {
    std::cout << p << "% ";
  }
  std::cout << "fault rates (" << kPaperTrialsPerWorkload
            << " trials x 2 workloads per point)...\n\n";

  const TrialEngine engine;
  for (const AluSpec& spec : all_specs()) {
    const auto alu = make_alu(spec.name);
    Row row;
    row.name = spec.name;
    row.sites = spec.expected_sites;
    row.area = static_cast<double>(spec.expected_sites) / base_area;
    for (const double pct : percents) {
      SweepSpec point_spec;
      point_spec.percents = {pct};
      point_spec.seed = 17;
      row.correct.push_back(
          engine.point(*alu, streams, point_spec).mean_percent_correct);
    }
    row.score = row.correct[row.correct.size() / 2];
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.score > b.score; });

  std::vector<std::string> header{"rank", "ALU", "sites", "area"};
  for (const double p : percents) {
    header.push_back("@" + fmt_double(p, 1) + "%");
  }
  header.push_back("acc/area");
  TextTable t(std::move(header));
  int rank = 1;
  for (const Row& r : rows) {
    std::vector<std::string> cells{std::to_string(rank++), r.name,
                                   std::to_string(r.sites),
                                   fmt_double(r.area, 2) + "x"};
    for (const double c : r.correct) {
      cells.push_back(fmt_double(c, 2));
    }
    cells.push_back(fmt_double(r.score / r.area, 1));
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  std::cout << "\nacc/area = accuracy at the middle rate per unit of area "
               "overhead (vs alunn) — the efficiency frontier. The paper's "
               "aluss buys its headline reliability with ~9.8x area; the "
               "single-level aluns delivers most of it at 3x.\n";
  return 0;
}
