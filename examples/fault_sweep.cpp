// fault_sweep — a custom fault-injection study using the public API:
// sweep any set of ALUs over any fault range and print the resulting
// reliability curves side by side.
//
// Build & run:  ./build/examples/fault_sweep [alu ...]
//   e.g.        ./build/examples/fault_sweep aluns aluss alunhsiao
#include <iostream>
#include <vector>

#include "alu/alu_factory.hpp"
#include "fault/sweep.hpp"
#include "sim/trial_engine.hpp"
#include "sim/table_render.hpp"

int main(int argc, char** argv) {
  using namespace nbx;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    names.emplace_back(argv[i]);
  }
  if (names.empty()) {
    names = {"aluncmos", "alunn", "aluns", "aluss"};
  }
  for (const std::string& n : names) {
    if (!find_spec(n)) {
      std::cerr << "unknown ALU '" << n << "'. Known ALUs:\n";
      for (const AluSpec& s : all_specs()) {
        std::cerr << "  " << s.name << " (" << s.expected_sites
                  << " sites)\n";
      }
      return 1;
    }
  }

  const std::vector<double> percents = {0.0, 0.5, 1.0, 2.0, 3.0, 4.0,
                                        6.0, 8.0, 10.0, 15.0, 25.0};
  const auto streams = paper_streams();

  std::cout << "Custom fault sweep (" << kPaperTrialsPerWorkload
            << " trials x 2 workloads per point)\n\n";
  std::vector<std::string> header{"fault%"};
  for (const std::string& n : names) {
    header.push_back(n);
  }
  TextTable t(std::move(header));
  const TrialEngine engine;
  SweepSpec spec;
  spec.percents = percents;
  spec.seed = 1337;
  std::vector<std::vector<DataPoint>> series;
  for (const std::string& n : names) {
    const auto alu = make_alu(n);
    series.push_back(engine.sweep(*alu, streams, spec));
  }
  for (std::size_t p = 0; p < percents.size(); ++p) {
    std::vector<std::string> row{fmt_double(percents[p], 1)};
    for (const auto& s : series) {
      row.push_back(fmt_double(s[p].mean_percent_correct, 2));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nASCII curves (each column = 2.5 percentage points of "
               "accuracy):\n";
  for (std::size_t s = 0; s < names.size(); ++s) {
    std::cout << "\n" << names[s] << "\n";
    for (std::size_t p = 0; p < percents.size(); ++p) {
      const int bars =
          static_cast<int>(series[s][p].mean_percent_correct / 2.5);
      std::cout << "  " << fmt_double(percents[p], 1) << "%\t"
                << std::string(static_cast<std::size_t>(bars), '#') << " "
                << fmt_double(series[s][p].mean_percent_correct, 1) << "\n";
    }
  }
  return 0;
}
