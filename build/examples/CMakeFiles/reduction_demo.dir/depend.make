# Empty dependencies file for reduction_demo.
# This may be replaced when dependencies are built.
