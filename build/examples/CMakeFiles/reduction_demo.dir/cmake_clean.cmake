file(REMOVE_RECURSE
  "CMakeFiles/reduction_demo.dir/reduction_demo.cpp.o"
  "CMakeFiles/reduction_demo.dir/reduction_demo.cpp.o.d"
  "reduction_demo"
  "reduction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
