
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_sweep.cpp" "examples/CMakeFiles/fault_sweep.dir/fault_sweep.cpp.o" "gcc" "examples/CMakeFiles/fault_sweep.dir/fault_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/nbx_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/nbx_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alu/CMakeFiles/nbx_alu.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/nbx_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/nbx_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/nbx_gatesim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nbx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
