# Empty dependencies file for nbxsim.
# This may be replaced when dependencies are built.
