file(REMOVE_RECURSE
  "CMakeFiles/nbxsim.dir/nbxsim.cpp.o"
  "CMakeFiles/nbxsim.dir/nbxsim.cpp.o.d"
  "nbxsim"
  "nbxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
