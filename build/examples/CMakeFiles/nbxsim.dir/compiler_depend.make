# Empty compiler generated dependencies file for nbxsim.
# This may be replaced when dependencies are built.
