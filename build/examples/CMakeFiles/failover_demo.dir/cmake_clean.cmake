file(REMOVE_RECURSE
  "CMakeFiles/failover_demo.dir/failover_demo.cpp.o"
  "CMakeFiles/failover_demo.dir/failover_demo.cpp.o.d"
  "failover_demo"
  "failover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
