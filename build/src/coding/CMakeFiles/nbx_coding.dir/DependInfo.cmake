
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/gf16.cpp" "src/coding/CMakeFiles/nbx_coding.dir/gf16.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/gf16.cpp.o.d"
  "/root/repo/src/coding/hamming.cpp" "src/coding/CMakeFiles/nbx_coding.dir/hamming.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/hamming.cpp.o.d"
  "/root/repo/src/coding/hsiao.cpp" "src/coding/CMakeFiles/nbx_coding.dir/hsiao.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/hsiao.cpp.o.d"
  "/root/repo/src/coding/majority.cpp" "src/coding/CMakeFiles/nbx_coding.dir/majority.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/majority.cpp.o.d"
  "/root/repo/src/coding/parity.cpp" "src/coding/CMakeFiles/nbx_coding.dir/parity.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/parity.cpp.o.d"
  "/root/repo/src/coding/reed_solomon.cpp" "src/coding/CMakeFiles/nbx_coding.dir/reed_solomon.cpp.o" "gcc" "src/coding/CMakeFiles/nbx_coding.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
