file(REMOVE_RECURSE
  "libnbx_coding.a"
)
