file(REMOVE_RECURSE
  "CMakeFiles/nbx_coding.dir/gf16.cpp.o"
  "CMakeFiles/nbx_coding.dir/gf16.cpp.o.d"
  "CMakeFiles/nbx_coding.dir/hamming.cpp.o"
  "CMakeFiles/nbx_coding.dir/hamming.cpp.o.d"
  "CMakeFiles/nbx_coding.dir/hsiao.cpp.o"
  "CMakeFiles/nbx_coding.dir/hsiao.cpp.o.d"
  "CMakeFiles/nbx_coding.dir/majority.cpp.o"
  "CMakeFiles/nbx_coding.dir/majority.cpp.o.d"
  "CMakeFiles/nbx_coding.dir/parity.cpp.o"
  "CMakeFiles/nbx_coding.dir/parity.cpp.o.d"
  "CMakeFiles/nbx_coding.dir/reed_solomon.cpp.o"
  "CMakeFiles/nbx_coding.dir/reed_solomon.cpp.o.d"
  "libnbx_coding.a"
  "libnbx_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
