# Empty dependencies file for nbx_coding.
# This may be replaced when dependencies are built.
