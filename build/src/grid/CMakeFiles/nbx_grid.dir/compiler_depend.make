# Empty compiler generated dependencies file for nbx_grid.
# This may be replaced when dependencies are built.
