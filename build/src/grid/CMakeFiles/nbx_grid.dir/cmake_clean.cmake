file(REMOVE_RECURSE
  "CMakeFiles/nbx_grid.dir/control_processor.cpp.o"
  "CMakeFiles/nbx_grid.dir/control_processor.cpp.o.d"
  "CMakeFiles/nbx_grid.dir/grid.cpp.o"
  "CMakeFiles/nbx_grid.dir/grid.cpp.o.d"
  "CMakeFiles/nbx_grid.dir/multi_grid.cpp.o"
  "CMakeFiles/nbx_grid.dir/multi_grid.cpp.o.d"
  "CMakeFiles/nbx_grid.dir/watchdog.cpp.o"
  "CMakeFiles/nbx_grid.dir/watchdog.cpp.o.d"
  "libnbx_grid.a"
  "libnbx_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
