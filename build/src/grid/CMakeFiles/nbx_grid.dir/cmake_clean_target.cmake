file(REMOVE_RECURSE
  "libnbx_grid.a"
)
