
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitvec.cpp" "src/common/CMakeFiles/nbx_common.dir/bitvec.cpp.o" "gcc" "src/common/CMakeFiles/nbx_common.dir/bitvec.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/common/CMakeFiles/nbx_common.dir/cli.cpp.o" "gcc" "src/common/CMakeFiles/nbx_common.dir/cli.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/nbx_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/nbx_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/nbx_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/nbx_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/common/CMakeFiles/nbx_common.dir/types.cpp.o" "gcc" "src/common/CMakeFiles/nbx_common.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
