# Empty dependencies file for nbx_common.
# This may be replaced when dependencies are built.
