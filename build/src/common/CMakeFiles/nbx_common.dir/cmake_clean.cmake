file(REMOVE_RECURSE
  "CMakeFiles/nbx_common.dir/bitvec.cpp.o"
  "CMakeFiles/nbx_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/nbx_common.dir/cli.cpp.o"
  "CMakeFiles/nbx_common.dir/cli.cpp.o.d"
  "CMakeFiles/nbx_common.dir/rng.cpp.o"
  "CMakeFiles/nbx_common.dir/rng.cpp.o.d"
  "CMakeFiles/nbx_common.dir/stats.cpp.o"
  "CMakeFiles/nbx_common.dir/stats.cpp.o.d"
  "CMakeFiles/nbx_common.dir/types.cpp.o"
  "CMakeFiles/nbx_common.dir/types.cpp.o.d"
  "libnbx_common.a"
  "libnbx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
