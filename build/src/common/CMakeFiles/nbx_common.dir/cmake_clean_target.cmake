file(REMOVE_RECURSE
  "libnbx_common.a"
)
