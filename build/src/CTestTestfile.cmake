# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("coding")
subdirs("fault")
subdirs("lut")
subdirs("gatesim")
subdirs("alu")
subdirs("cell")
subdirs("grid")
subdirs("workload")
subdirs("sim")
