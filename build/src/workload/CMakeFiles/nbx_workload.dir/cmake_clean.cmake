file(REMOVE_RECURSE
  "CMakeFiles/nbx_workload.dir/bitmap.cpp.o"
  "CMakeFiles/nbx_workload.dir/bitmap.cpp.o.d"
  "CMakeFiles/nbx_workload.dir/image_metrics.cpp.o"
  "CMakeFiles/nbx_workload.dir/image_metrics.cpp.o.d"
  "CMakeFiles/nbx_workload.dir/image_ops.cpp.o"
  "CMakeFiles/nbx_workload.dir/image_ops.cpp.o.d"
  "CMakeFiles/nbx_workload.dir/instruction_stream.cpp.o"
  "CMakeFiles/nbx_workload.dir/instruction_stream.cpp.o.d"
  "CMakeFiles/nbx_workload.dir/reduction.cpp.o"
  "CMakeFiles/nbx_workload.dir/reduction.cpp.o.d"
  "libnbx_workload.a"
  "libnbx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
