
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bitmap.cpp" "src/workload/CMakeFiles/nbx_workload.dir/bitmap.cpp.o" "gcc" "src/workload/CMakeFiles/nbx_workload.dir/bitmap.cpp.o.d"
  "/root/repo/src/workload/image_metrics.cpp" "src/workload/CMakeFiles/nbx_workload.dir/image_metrics.cpp.o" "gcc" "src/workload/CMakeFiles/nbx_workload.dir/image_metrics.cpp.o.d"
  "/root/repo/src/workload/image_ops.cpp" "src/workload/CMakeFiles/nbx_workload.dir/image_ops.cpp.o" "gcc" "src/workload/CMakeFiles/nbx_workload.dir/image_ops.cpp.o.d"
  "/root/repo/src/workload/instruction_stream.cpp" "src/workload/CMakeFiles/nbx_workload.dir/instruction_stream.cpp.o" "gcc" "src/workload/CMakeFiles/nbx_workload.dir/instruction_stream.cpp.o.d"
  "/root/repo/src/workload/reduction.cpp" "src/workload/CMakeFiles/nbx_workload.dir/reduction.cpp.o" "gcc" "src/workload/CMakeFiles/nbx_workload.dir/reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
