file(REMOVE_RECURSE
  "libnbx_workload.a"
)
