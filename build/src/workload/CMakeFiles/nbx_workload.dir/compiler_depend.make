# Empty compiler generated dependencies file for nbx_workload.
# This may be replaced when dependencies are built.
