# CMake generated Testfile for 
# Source directory: /root/repo/src/cell
# Build directory: /root/repo/build/src/cell
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
