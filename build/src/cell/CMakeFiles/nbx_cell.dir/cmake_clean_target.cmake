file(REMOVE_RECURSE
  "libnbx_cell.a"
)
