file(REMOVE_RECURSE
  "CMakeFiles/nbx_cell.dir/cell_memory.cpp.o"
  "CMakeFiles/nbx_cell.dir/cell_memory.cpp.o.d"
  "CMakeFiles/nbx_cell.dir/control_logic.cpp.o"
  "CMakeFiles/nbx_cell.dir/control_logic.cpp.o.d"
  "CMakeFiles/nbx_cell.dir/memory_word.cpp.o"
  "CMakeFiles/nbx_cell.dir/memory_word.cpp.o.d"
  "CMakeFiles/nbx_cell.dir/packet.cpp.o"
  "CMakeFiles/nbx_cell.dir/packet.cpp.o.d"
  "CMakeFiles/nbx_cell.dir/processor_cell.cpp.o"
  "CMakeFiles/nbx_cell.dir/processor_cell.cpp.o.d"
  "CMakeFiles/nbx_cell.dir/trace.cpp.o"
  "CMakeFiles/nbx_cell.dir/trace.cpp.o.d"
  "libnbx_cell.a"
  "libnbx_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
