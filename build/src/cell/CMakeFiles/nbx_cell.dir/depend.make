# Empty dependencies file for nbx_cell.
# This may be replaced when dependencies are built.
