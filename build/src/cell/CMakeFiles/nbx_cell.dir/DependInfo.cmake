
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/cell_memory.cpp" "src/cell/CMakeFiles/nbx_cell.dir/cell_memory.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/cell_memory.cpp.o.d"
  "/root/repo/src/cell/control_logic.cpp" "src/cell/CMakeFiles/nbx_cell.dir/control_logic.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/control_logic.cpp.o.d"
  "/root/repo/src/cell/memory_word.cpp" "src/cell/CMakeFiles/nbx_cell.dir/memory_word.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/memory_word.cpp.o.d"
  "/root/repo/src/cell/packet.cpp" "src/cell/CMakeFiles/nbx_cell.dir/packet.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/packet.cpp.o.d"
  "/root/repo/src/cell/processor_cell.cpp" "src/cell/CMakeFiles/nbx_cell.dir/processor_cell.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/processor_cell.cpp.o.d"
  "/root/repo/src/cell/trace.cpp" "src/cell/CMakeFiles/nbx_cell.dir/trace.cpp.o" "gcc" "src/cell/CMakeFiles/nbx_cell.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/nbx_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/nbx_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/alu/CMakeFiles/nbx_alu.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/nbx_gatesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
