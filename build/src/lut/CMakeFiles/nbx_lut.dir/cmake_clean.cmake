file(REMOVE_RECURSE
  "CMakeFiles/nbx_lut.dir/coded_lut.cpp.o"
  "CMakeFiles/nbx_lut.dir/coded_lut.cpp.o.d"
  "CMakeFiles/nbx_lut.dir/hw_hamming_lut.cpp.o"
  "CMakeFiles/nbx_lut.dir/hw_hamming_lut.cpp.o.d"
  "CMakeFiles/nbx_lut.dir/hw_lut.cpp.o"
  "CMakeFiles/nbx_lut.dir/hw_lut.cpp.o.d"
  "CMakeFiles/nbx_lut.dir/truth_table.cpp.o"
  "CMakeFiles/nbx_lut.dir/truth_table.cpp.o.d"
  "libnbx_lut.a"
  "libnbx_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
