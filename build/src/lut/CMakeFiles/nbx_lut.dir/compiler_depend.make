# Empty compiler generated dependencies file for nbx_lut.
# This may be replaced when dependencies are built.
