
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lut/coded_lut.cpp" "src/lut/CMakeFiles/nbx_lut.dir/coded_lut.cpp.o" "gcc" "src/lut/CMakeFiles/nbx_lut.dir/coded_lut.cpp.o.d"
  "/root/repo/src/lut/hw_hamming_lut.cpp" "src/lut/CMakeFiles/nbx_lut.dir/hw_hamming_lut.cpp.o" "gcc" "src/lut/CMakeFiles/nbx_lut.dir/hw_hamming_lut.cpp.o.d"
  "/root/repo/src/lut/hw_lut.cpp" "src/lut/CMakeFiles/nbx_lut.dir/hw_lut.cpp.o" "gcc" "src/lut/CMakeFiles/nbx_lut.dir/hw_lut.cpp.o.d"
  "/root/repo/src/lut/truth_table.cpp" "src/lut/CMakeFiles/nbx_lut.dir/truth_table.cpp.o" "gcc" "src/lut/CMakeFiles/nbx_lut.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/nbx_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/nbx_gatesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
