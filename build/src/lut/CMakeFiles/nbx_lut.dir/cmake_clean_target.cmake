file(REMOVE_RECURSE
  "libnbx_lut.a"
)
