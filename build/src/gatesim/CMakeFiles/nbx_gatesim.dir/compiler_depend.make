# Empty compiler generated dependencies file for nbx_gatesim.
# This may be replaced when dependencies are built.
