
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gatesim/netlist.cpp" "src/gatesim/CMakeFiles/nbx_gatesim.dir/netlist.cpp.o" "gcc" "src/gatesim/CMakeFiles/nbx_gatesim.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
