file(REMOVE_RECURSE
  "CMakeFiles/nbx_gatesim.dir/netlist.cpp.o"
  "CMakeFiles/nbx_gatesim.dir/netlist.cpp.o.d"
  "libnbx_gatesim.a"
  "libnbx_gatesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_gatesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
