file(REMOVE_RECURSE
  "libnbx_gatesim.a"
)
