# Empty compiler generated dependencies file for nbx_sim.
# This may be replaced when dependencies are built.
