file(REMOVE_RECURSE
  "CMakeFiles/nbx_sim.dir/analytic.cpp.o"
  "CMakeFiles/nbx_sim.dir/analytic.cpp.o.d"
  "CMakeFiles/nbx_sim.dir/experiment.cpp.o"
  "CMakeFiles/nbx_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/nbx_sim.dir/figure.cpp.o"
  "CMakeFiles/nbx_sim.dir/figure.cpp.o.d"
  "CMakeFiles/nbx_sim.dir/table_render.cpp.o"
  "CMakeFiles/nbx_sim.dir/table_render.cpp.o.d"
  "libnbx_sim.a"
  "libnbx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
