
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic.cpp" "src/sim/CMakeFiles/nbx_sim.dir/analytic.cpp.o" "gcc" "src/sim/CMakeFiles/nbx_sim.dir/analytic.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/nbx_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/nbx_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/figure.cpp" "src/sim/CMakeFiles/nbx_sim.dir/figure.cpp.o" "gcc" "src/sim/CMakeFiles/nbx_sim.dir/figure.cpp.o.d"
  "/root/repo/src/sim/table_render.cpp" "src/sim/CMakeFiles/nbx_sim.dir/table_render.cpp.o" "gcc" "src/sim/CMakeFiles/nbx_sim.dir/table_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/alu/CMakeFiles/nbx_alu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nbx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/nbx_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/nbx_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/nbx_gatesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
