file(REMOVE_RECURSE
  "libnbx_sim.a"
)
