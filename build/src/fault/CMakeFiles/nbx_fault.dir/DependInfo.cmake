
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/defect_map.cpp" "src/fault/CMakeFiles/nbx_fault.dir/defect_map.cpp.o" "gcc" "src/fault/CMakeFiles/nbx_fault.dir/defect_map.cpp.o.d"
  "/root/repo/src/fault/fit.cpp" "src/fault/CMakeFiles/nbx_fault.dir/fit.cpp.o" "gcc" "src/fault/CMakeFiles/nbx_fault.dir/fit.cpp.o.d"
  "/root/repo/src/fault/mask_generator.cpp" "src/fault/CMakeFiles/nbx_fault.dir/mask_generator.cpp.o" "gcc" "src/fault/CMakeFiles/nbx_fault.dir/mask_generator.cpp.o.d"
  "/root/repo/src/fault/sweep.cpp" "src/fault/CMakeFiles/nbx_fault.dir/sweep.cpp.o" "gcc" "src/fault/CMakeFiles/nbx_fault.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
