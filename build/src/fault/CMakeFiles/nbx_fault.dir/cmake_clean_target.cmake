file(REMOVE_RECURSE
  "libnbx_fault.a"
)
