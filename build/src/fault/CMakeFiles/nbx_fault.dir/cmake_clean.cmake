file(REMOVE_RECURSE
  "CMakeFiles/nbx_fault.dir/defect_map.cpp.o"
  "CMakeFiles/nbx_fault.dir/defect_map.cpp.o.d"
  "CMakeFiles/nbx_fault.dir/fit.cpp.o"
  "CMakeFiles/nbx_fault.dir/fit.cpp.o.d"
  "CMakeFiles/nbx_fault.dir/mask_generator.cpp.o"
  "CMakeFiles/nbx_fault.dir/mask_generator.cpp.o.d"
  "CMakeFiles/nbx_fault.dir/sweep.cpp.o"
  "CMakeFiles/nbx_fault.dir/sweep.cpp.o.d"
  "libnbx_fault.a"
  "libnbx_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
