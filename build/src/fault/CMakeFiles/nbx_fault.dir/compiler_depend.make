# Empty compiler generated dependencies file for nbx_fault.
# This may be replaced when dependencies are built.
