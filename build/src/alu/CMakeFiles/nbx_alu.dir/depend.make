# Empty dependencies file for nbx_alu.
# This may be replaced when dependencies are built.
