file(REMOVE_RECURSE
  "CMakeFiles/nbx_alu.dir/alu_factory.cpp.o"
  "CMakeFiles/nbx_alu.dir/alu_factory.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/cmos_core_alu.cpp.o"
  "CMakeFiles/nbx_alu.dir/cmos_core_alu.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/hw_core_alu.cpp.o"
  "CMakeFiles/nbx_alu.dir/hw_core_alu.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/lut_core_alu.cpp.o"
  "CMakeFiles/nbx_alu.dir/lut_core_alu.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/module_alu.cpp.o"
  "CMakeFiles/nbx_alu.dir/module_alu.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/voter.cpp.o"
  "CMakeFiles/nbx_alu.dir/voter.cpp.o.d"
  "CMakeFiles/nbx_alu.dir/wide_alu.cpp.o"
  "CMakeFiles/nbx_alu.dir/wide_alu.cpp.o.d"
  "libnbx_alu.a"
  "libnbx_alu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbx_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
