file(REMOVE_RECURSE
  "libnbx_alu.a"
)
