
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alu/alu_factory.cpp" "src/alu/CMakeFiles/nbx_alu.dir/alu_factory.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/alu_factory.cpp.o.d"
  "/root/repo/src/alu/cmos_core_alu.cpp" "src/alu/CMakeFiles/nbx_alu.dir/cmos_core_alu.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/cmos_core_alu.cpp.o.d"
  "/root/repo/src/alu/hw_core_alu.cpp" "src/alu/CMakeFiles/nbx_alu.dir/hw_core_alu.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/hw_core_alu.cpp.o.d"
  "/root/repo/src/alu/lut_core_alu.cpp" "src/alu/CMakeFiles/nbx_alu.dir/lut_core_alu.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/lut_core_alu.cpp.o.d"
  "/root/repo/src/alu/module_alu.cpp" "src/alu/CMakeFiles/nbx_alu.dir/module_alu.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/module_alu.cpp.o.d"
  "/root/repo/src/alu/voter.cpp" "src/alu/CMakeFiles/nbx_alu.dir/voter.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/voter.cpp.o.d"
  "/root/repo/src/alu/wide_alu.cpp" "src/alu/CMakeFiles/nbx_alu.dir/wide_alu.cpp.o" "gcc" "src/alu/CMakeFiles/nbx_alu.dir/wide_alu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/nbx_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/nbx_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/nbx_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/nbx_gatesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
