file(REMOVE_RECURSE
  "CMakeFiles/bench_defects.dir/bench_defects.cpp.o"
  "CMakeFiles/bench_defects.dir/bench_defects.cpp.o.d"
  "bench_defects"
  "bench_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
