# Empty compiler generated dependencies file for bench_defects.
# This may be replaced when dependencies are built.
