# Empty compiler generated dependencies file for bench_ablation_voter.
# This may be replaced when dependencies are built.
