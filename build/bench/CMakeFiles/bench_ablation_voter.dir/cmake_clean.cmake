file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_voter.dir/bench_ablation_voter.cpp.o"
  "CMakeFiles/bench_ablation_voter.dir/bench_ablation_voter.cpp.o.d"
  "bench_ablation_voter"
  "bench_ablation_voter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_voter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
