# Empty compiler generated dependencies file for bench_width.
# This may be replaced when dependencies are built.
