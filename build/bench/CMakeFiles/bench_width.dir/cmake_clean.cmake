file(REMOVE_RECURSE
  "CMakeFiles/bench_width.dir/bench_width.cpp.o"
  "CMakeFiles/bench_width.dir/bench_width.cpp.o.d"
  "bench_width"
  "bench_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
