file(REMOVE_RECURSE
  "CMakeFiles/bench_grid.dir/bench_grid.cpp.o"
  "CMakeFiles/bench_grid.dir/bench_grid.cpp.o.d"
  "bench_grid"
  "bench_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
