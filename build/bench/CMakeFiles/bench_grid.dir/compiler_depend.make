# Empty compiler generated dependencies file for bench_grid.
# This may be replaced when dependencies are built.
