# Empty dependencies file for bench_detector_faults.
# This may be replaced when dependencies are built.
