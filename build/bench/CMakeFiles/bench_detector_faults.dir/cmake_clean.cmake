file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_faults.dir/bench_detector_faults.cpp.o"
  "CMakeFiles/bench_detector_faults.dir/bench_detector_faults.cpp.o.d"
  "bench_detector_faults"
  "bench_detector_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
