file(REMOVE_RECURSE
  "CMakeFiles/bench_analytic.dir/bench_analytic.cpp.o"
  "CMakeFiles/bench_analytic.dir/bench_analytic.cpp.o.d"
  "bench_analytic"
  "bench_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
