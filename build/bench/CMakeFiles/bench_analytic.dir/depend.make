# Empty dependencies file for bench_analytic.
# This may be replaced when dependencies are built.
