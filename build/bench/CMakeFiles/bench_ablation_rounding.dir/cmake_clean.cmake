file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rounding.dir/bench_ablation_rounding.cpp.o"
  "CMakeFiles/bench_ablation_rounding.dir/bench_ablation_rounding.cpp.o.d"
  "bench_ablation_rounding"
  "bench_ablation_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
