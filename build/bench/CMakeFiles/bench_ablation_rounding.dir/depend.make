# Empty dependencies file for bench_ablation_rounding.
# This may be replaced when dependencies are built.
