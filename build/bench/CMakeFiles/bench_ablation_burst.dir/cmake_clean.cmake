file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_burst.dir/bench_ablation_burst.cpp.o"
  "CMakeFiles/bench_ablation_burst.dir/bench_ablation_burst.cpp.o.d"
  "bench_ablation_burst"
  "bench_ablation_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
