# Empty compiler generated dependencies file for bench_ablation_burst.
# This may be replaced when dependencies are built.
