# Empty compiler generated dependencies file for bench_area_overhead.
# This may be replaced when dependencies are built.
