file(REMOVE_RECURSE
  "CMakeFiles/bench_area_overhead.dir/bench_area_overhead.cpp.o"
  "CMakeFiles/bench_area_overhead.dir/bench_area_overhead.cpp.o.d"
  "bench_area_overhead"
  "bench_area_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
