# Empty compiler generated dependencies file for bench_failover.
# This may be replaced when dependencies are built.
