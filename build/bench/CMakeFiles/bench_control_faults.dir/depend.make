# Empty dependencies file for bench_control_faults.
# This may be replaced when dependencies are built.
