file(REMOVE_RECURSE
  "CMakeFiles/bench_control_faults.dir/bench_control_faults.cpp.o"
  "CMakeFiles/bench_control_faults.dir/bench_control_faults.cpp.o.d"
  "bench_control_faults"
  "bench_control_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
