file(REMOVE_RECURSE
  "CMakeFiles/bench_fit_rates.dir/bench_fit_rates.cpp.o"
  "CMakeFiles/bench_fit_rates.dir/bench_fit_rates.cpp.o.d"
  "bench_fit_rates"
  "bench_fit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
