# Empty dependencies file for bench_fit_rates.
# This may be replaced when dependencies are built.
