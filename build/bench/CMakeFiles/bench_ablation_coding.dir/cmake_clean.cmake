file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coding.dir/bench_ablation_coding.cpp.o"
  "CMakeFiles/bench_ablation_coding.dir/bench_ablation_coding.cpp.o.d"
  "bench_ablation_coding"
  "bench_ablation_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
