# Empty dependencies file for bench_ablation_coding.
# This may be replaced when dependencies are built.
