file(REMOVE_RECURSE
  "CMakeFiles/bench_headline.dir/bench_headline.cpp.o"
  "CMakeFiles/bench_headline.dir/bench_headline.cpp.o.d"
  "bench_headline"
  "bench_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
