file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/bitmap_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/bitmap_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/image_metrics_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/image_metrics_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/image_ops_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/image_ops_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/instruction_stream_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/instruction_stream_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/reduction_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/reduction_test.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
