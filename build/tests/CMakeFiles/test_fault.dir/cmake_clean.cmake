file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/fault/burst_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/burst_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/defect_map_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/defect_map_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/fit_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/fit_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/mask_generator_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/mask_generator_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/mask_view_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/mask_view_test.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
  "test_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
