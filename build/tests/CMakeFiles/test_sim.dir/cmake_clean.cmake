file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/analytic_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/analytic_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/figure_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/figure_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/table_render_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/table_render_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
