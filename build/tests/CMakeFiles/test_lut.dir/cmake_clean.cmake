file(REMOVE_RECURSE
  "CMakeFiles/test_lut.dir/lut/coded_lut_test.cpp.o"
  "CMakeFiles/test_lut.dir/lut/coded_lut_test.cpp.o.d"
  "CMakeFiles/test_lut.dir/lut/hw_hamming_lut_test.cpp.o"
  "CMakeFiles/test_lut.dir/lut/hw_hamming_lut_test.cpp.o.d"
  "CMakeFiles/test_lut.dir/lut/hw_lut_test.cpp.o"
  "CMakeFiles/test_lut.dir/lut/hw_lut_test.cpp.o.d"
  "CMakeFiles/test_lut.dir/lut/truth_table_test.cpp.o"
  "CMakeFiles/test_lut.dir/lut/truth_table_test.cpp.o.d"
  "test_lut"
  "test_lut.pdb"
  "test_lut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
