# Empty dependencies file for test_lut.
# This may be replaced when dependencies are built.
