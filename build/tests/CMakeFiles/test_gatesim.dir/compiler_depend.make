# Empty compiler generated dependencies file for test_gatesim.
# This may be replaced when dependencies are built.
