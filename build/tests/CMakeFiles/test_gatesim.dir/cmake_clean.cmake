file(REMOVE_RECURSE
  "CMakeFiles/test_gatesim.dir/gatesim/netlist_test.cpp.o"
  "CMakeFiles/test_gatesim.dir/gatesim/netlist_test.cpp.o.d"
  "test_gatesim"
  "test_gatesim.pdb"
  "test_gatesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gatesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
