file(REMOVE_RECURSE
  "CMakeFiles/test_cell.dir/cell/cell_memory_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/cell_memory_test.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/control_logic_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/control_logic_test.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/memory_word_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/memory_word_test.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/packet_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/packet_test.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/processor_cell_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/processor_cell_test.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/scrub_test.cpp.o"
  "CMakeFiles/test_cell.dir/cell/scrub_test.cpp.o.d"
  "test_cell"
  "test_cell.pdb"
  "test_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
