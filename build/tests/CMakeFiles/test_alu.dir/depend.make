# Empty dependencies file for test_alu.
# This may be replaced when dependencies are built.
