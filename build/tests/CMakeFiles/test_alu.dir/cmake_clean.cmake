file(REMOVE_RECURSE
  "CMakeFiles/test_alu.dir/alu/alu_factory_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/alu_factory_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/cmos_core_alu_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/cmos_core_alu_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/defect_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/defect_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/fault_behaviour_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/fault_behaviour_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/lut_core_alu_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/lut_core_alu_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/module_alu_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/module_alu_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/voter_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/voter_test.cpp.o.d"
  "CMakeFiles/test_alu.dir/alu/wide_alu_test.cpp.o"
  "CMakeFiles/test_alu.dir/alu/wide_alu_test.cpp.o.d"
  "test_alu"
  "test_alu.pdb"
  "test_alu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
