file(REMOVE_RECURSE
  "CMakeFiles/test_coding.dir/coding/hamming_test.cpp.o"
  "CMakeFiles/test_coding.dir/coding/hamming_test.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/hsiao_test.cpp.o"
  "CMakeFiles/test_coding.dir/coding/hsiao_test.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/majority_test.cpp.o"
  "CMakeFiles/test_coding.dir/coding/majority_test.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/parity_test.cpp.o"
  "CMakeFiles/test_coding.dir/coding/parity_test.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/reed_solomon_test.cpp.o"
  "CMakeFiles/test_coding.dir/coding/reed_solomon_test.cpp.o.d"
  "test_coding"
  "test_coding.pdb"
  "test_coding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
