# Empty dependencies file for test_coding.
# This may be replaced when dependencies are built.
