# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_lut[1]_include.cmake")
include("/root/repo/build/tests/test_gatesim[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_alu[1]_include.cmake")
include("/root/repo/build/tests/test_cell[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
